"""Ablation variants of FedLPS used in Table II and Figure 9.

The ablations reuse the :class:`repro.core.FedLPS` implementation with
different knob settings:

* **FLST** — learnable sparse training with a *fixed* ratio (0.5 for every
  client): isolates the contribution of the learnable pattern.
* **RCR** — learnable pattern but the rigid Resource-Controlled Ratio rule
  (ratio = device capability) used by HeteroFL/FjORD/FedRolex.
* **P-UCBV** — the full method (adaptive ratio + learnable pattern).
* pattern ablations — the FedLPS pipeline with heuristic random / ordered /
  magnitude patterns in place of the learnable one (Figure 9a).

The "Fix" vs "Dyn" rows of Table II refer to static vs dynamically
fluctuating device resources; that is a property of the device fleet
(``DeviceProfile.dynamic``) rather than of the strategy, so the experiment
harness toggles it when building the fleet.
"""

from __future__ import annotations

from ..core.strategy import FedLPS


def flst(fixed_ratio: float = 0.5, **kwargs) -> FedLPS:
    """FLST: learnable patterns, fixed sparse ratio for every client."""
    strategy = FedLPS(ratio_policy="fixed", fixed_ratio=fixed_ratio, **kwargs)
    strategy.name = "flst"
    return strategy


def rcr(**kwargs) -> FedLPS:
    """RCR: learnable patterns, rigid capability-controlled sparse ratios."""
    strategy = FedLPS(ratio_policy="capability", **kwargs)
    strategy.name = "rcr"
    return strategy


def pucbv(**kwargs) -> FedLPS:
    """P-UCBV: the full FedLPS (adaptive ratios + learnable patterns)."""
    strategy = FedLPS(ratio_policy="pucbv", **kwargs)
    strategy.name = "p-ucbv"
    return strategy


def fedlps_with_pattern(pattern_mode: str, fixed_ratio: float = 0.5,
                        **kwargs) -> FedLPS:
    """FedLPS pipeline with a heuristic pattern at a fixed ratio (Figure 9a).

    The ratio floor is lowered to the requested ratio so that the Figure 9
    sweep can explore ratios below the default arm-space floor.
    """
    kwargs.setdefault("ratio_min", min(fixed_ratio, 0.25))
    strategy = FedLPS(ratio_policy="fixed", fixed_ratio=fixed_ratio,
                      pattern_mode=pattern_mode, **kwargs)
    strategy.name = f"pattern-{pattern_mode}"
    return strategy


def fedlps_learnable_fixed_ratio(fixed_ratio: float, **kwargs) -> FedLPS:
    """FedLPS learnable pattern at one fixed ratio (Figure 9 ratio sweeps)."""
    kwargs.setdefault("ratio_min", min(fixed_ratio, 0.25))
    strategy = FedLPS(ratio_policy="fixed", fixed_ratio=fixed_ratio,
                      pattern_mode="learnable", **kwargs)
    strategy.name = f"pattern-learnable@{fixed_ratio:g}"
    return strategy
