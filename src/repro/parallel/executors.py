"""Pluggable execution backends for the federated simulator.

Every parallel surface of the codebase — per-round client fan-out in
:class:`~repro.federated.trainer.FederatedTrainer`, whole-run sweep jobs in
``repro.experiments.runner`` — goes through the same small :class:`Executor`
API so that backends can be swapped with a CLI flag:

* :class:`SerialExecutor` runs tasks inline (the reference semantics);
* :class:`ThreadPoolExecutor` runs tasks on a thread pool, handing every task
  a pickled private copy of its payload so concurrent tasks cannot race on
  shared mutable state (models are used as scratch space during training);
* :class:`ProcessPoolExecutor` runs tasks in spawned worker processes, which
  isolates payloads through pickling by construction.

Pools are **persistent**: the underlying thread/process pool is created once
per executor and reused by every ``map_ordered``/``map_unordered`` call, so a
trainer pays worker start-up once per run, not once per round.  ``close()``
(or exiting the ``with`` block) shuts the pool down exactly once; a closed
executor raises :class:`RuntimeError` on reuse instead of silently creating
a new pool.

Task functions must be module-level callables (picklable under the spawn
start method) and must return everything the caller needs: with the thread
and process backends, in-place mutations of the payload are invisible to the
caller.  Combined with deterministic per-task seeding (``default_rng(seed +
client_id)`` style), results are bit-identical across all three backends —
the determinism test suite enforces this.

Backends with ``supports_broadcast`` set participate in the shared-memory
round broadcast (:mod:`repro.parallel.broadcast`): callers ship the
round-invariant payload once and hand tasks a small handle instead of a full
pickled copy.  ``payload_witness`` is an observation hook for tests and the
benchmark harness: when set, it is called with every task payload at
submission time, which is how the per-round "bytes crossing the worker
boundary" counters are measured without touching the pool internals.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import pickle
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type


def clone_via_pickle(obj: Any) -> Any:
    """A deep, exact copy of ``obj`` (float64 payloads survive bitwise)."""
    return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def default_worker_count() -> int:
    """A sensible worker count when the user passes ``--workers 0``."""
    return max(1, (os.cpu_count() or 2) - 1)


class Executor:
    """Minimal map-style execution interface shared by all backends.

    ``map_ordered`` returns results in input order; ``map_unordered`` returns
    ``(index, result)`` pairs in completion order, which lets callers start
    consuming results (e.g. writing a sweep cache) before the slowest job
    finishes.  Exceptions raised by a task propagate to the caller.
    """

    backend = "base"
    #: whether the backend benefits from the shared-memory round broadcast;
    #: the serial backend runs tasks inline on the real objects, so handing
    #: it handles would only add (de)serialization work
    supports_broadcast = False
    #: whether injected faults can be realized for real on this backend —
    #: a worker crash actually kills a process, a hang actually stalls one
    #: (see ``repro.parallel.faults``); in-process backends simulate both
    supports_real_faults = False
    #: whether :meth:`replenish` can rebuild the worker pool after a dead
    #: or hung worker (process pools can; threads cannot be killed)
    can_replenish = False

    def __init__(self, workers: int = 1) -> None:
        self.workers = default_worker_count() if workers <= 0 else int(workers)
        self.payload_witness: Optional[Callable[[Any], None]] = None
        self._closed = False

    # ----------------------------------------------------------------- api
    def map_ordered(self, fn: Callable[[Any], Any],
                    items: Sequence[Any]) -> List[Any]:
        raise NotImplementedError

    def map_unordered(self, fn: Callable[[Any], Any],
                      items: Sequence[Any]) -> List[Tuple[int, Any]]:
        raise NotImplementedError

    def warm_up(self) -> None:
        """Eagerly start the pool's workers (no-op for inline backends)."""

    def replenish(self) -> None:
        """Rebuild the worker pool after worker loss (pool backends only).

        The supervision layer (:mod:`repro.parallel.supervision`) calls
        this after a broken pool or a reclaimed hang; backends that cannot
        lose workers refuse instead of pretending.
        """
        raise RuntimeError(
            f"{type(self).__name__} cannot replenish workers "
            "(can_replenish is False)")

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release pool resources; the executor must not be reused after."""
        self._closed = True

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                f"{type(self).__name__} is closed; pools are persistent "
                "across rounds but cannot be reused after close() — create "
                "a new executor instead")

    def _observe(self, items: Sequence[Any]) -> None:
        if self.payload_witness is not None:
            for item in items:
                self.payload_witness(item)

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        state = ", closed" if self._closed else ""
        return f"{type(self).__name__}(workers={self.workers}{state})"


class SerialExecutor(Executor):
    """Inline execution in the calling thread — the reference backend."""

    backend = "serial"

    def __init__(self, workers: int = 1) -> None:
        super().__init__(1)

    def map_ordered(self, fn, items):
        self._ensure_open()
        items = list(items)
        self._observe(items)
        return [fn(item) for item in items]

    def map_unordered(self, fn, items):
        self._ensure_open()
        items = list(items)
        self._observe(items)
        return [(index, fn(item)) for index, item in enumerate(items)]


def _warm_up_task(seconds: float) -> None:
    """Busy-wait used by ``warm_up`` to force the pool to start workers."""
    time.sleep(seconds)


class _PoolExecutor(Executor):
    """Shared plumbing for the concurrent.futures-backed backends."""

    def _pool(self) -> concurrent.futures.Executor:
        raise NotImplementedError

    def _prepare(self, fn: Callable[[Any], Any]) -> Callable[[Any], Any]:
        """Hook: wrap the task function before submission."""
        return fn

    def submit(self, fn: Callable[[Any], Any],
               item: Any) -> concurrent.futures.Future:
        """Submit one task, returning its future (supervision entry point).

        Goes through the same :meth:`_prepare` hook as the ``map`` calls,
        so per-task payload isolation (the thread backend's pickled clone)
        applies identically to supervised submissions.
        """
        self._ensure_open()
        self._observe([item])
        return self._pool().submit(self._prepare(fn), item)

    def map_ordered(self, fn, items):
        self._ensure_open()
        items = list(items)
        if not items:
            return []
        self._observe(items)
        task = self._prepare(fn)
        futures = [self._pool().submit(task, item) for item in items]
        return [future.result() for future in futures]

    def map_unordered(self, fn, items):
        self._ensure_open()
        items = list(items)
        if not items:
            return []
        self._observe(items)
        task = self._prepare(fn)
        indexed = {self._pool().submit(task, item): index
                   for index, item in enumerate(items)}
        results: List[Tuple[int, Any]] = []
        for future in concurrent.futures.as_completed(indexed):
            results.append((indexed[future], future.result()))
        return results

    def warm_up(self):
        # concurrent.futures pools start workers lazily on submission; a
        # batch of short sleeps (one per worker, long enough to overlap)
        # forces the full complement to start now so the first real round
        # does not pay the start-up cost
        self._ensure_open()
        futures = [self._pool().submit(_warm_up_task, 0.02)
                   for _ in range(self.workers)]
        for future in futures:
            future.result()

    def close(self):
        if not self._closed:
            super().close()
            self._executor.shutdown(wait=True)


def _run_on_clone(fn: Callable[[Any], Any], item: Any) -> Any:
    return fn(clone_via_pickle(item))


class ThreadPoolExecutor(_PoolExecutor):
    """Thread-pool backend with per-task payload isolation.

    Threads share one address space, and simulator tasks use mutable scratch
    objects (the model instance most prominently), so every task runs on a
    pickled private copy of its payload.  That makes thread results identical
    to the process backend — and to the serial backend whenever tasks confine
    their side effects to state they return.
    """

    backend = "thread"
    supports_broadcast = True

    def __init__(self, workers: int = 1) -> None:
        super().__init__(workers)
        self._executor: concurrent.futures.Executor = \
            concurrent.futures.ThreadPoolExecutor(max_workers=self.workers)

    def _pool(self):
        return self._executor

    def _prepare(self, fn):
        def task(item, _fn=fn):
            return _run_on_clone(_fn, item)
        return task


class ProcessPoolExecutor(_PoolExecutor):
    """Process-pool backend using the spawn start method.

    Spawn (rather than fork) guarantees workers start from a clean
    interpreter, so nothing leaks in through inherited globals and the same
    code path runs on every platform.  Payloads and task functions must be
    picklable; all per-task randomness must be derived from seeds carried in
    the payload.
    """

    backend = "process"
    supports_broadcast = True
    supports_real_faults = True
    can_replenish = True

    def __init__(self, workers: int = 1, *, start_method: str = "spawn") -> None:
        super().__init__(workers)
        self._mp_context = multiprocessing.get_context(start_method)
        self._executor: concurrent.futures.Executor = self._spawn_pool()

    def _spawn_pool(self) -> concurrent.futures.Executor:
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers, mp_context=self._mp_context)

    def _pool(self):
        return self._executor

    def replenish(self):
        """Replace the pool after worker loss (broken pool, reclaimed hang).

        The old pool is torn down without waiting — its workers are either
        already dead (a crash broke the pool) or abandoned mid-hang, and
        lingering ones are terminated outright.  The replacement pool
        starts cold; replacement workers need *no* re-shipped state — the
        run-invariant broadcast session still lives in the server-owned
        shared-memory manifest, so their first task re-materializes from
        the same handles every original worker used (no re-pickle of
        params — ``tests/parallel/test_supervision.py`` pins this).
        """
        self._ensure_open()
        old = self._executor
        # grab the worker handles before shutdown() drops its reference to
        # them (it sets _processes = None even with wait=False)
        workers = list((getattr(old, "_processes", None) or {}).values())
        try:
            old.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - broken pools may mis-shutdown
            pass
        # a hung (or kill-orphaned) worker survives a no-wait shutdown;
        # reclaim it explicitly so replenishment never leaks processes
        for process in workers:
            if process.is_alive():
                process.terminate()
        self._executor = self._spawn_pool()


EXECUTOR_BACKENDS: Dict[str, Type[Executor]] = {
    "serial": SerialExecutor,
    "thread": ThreadPoolExecutor,
    "process": ProcessPoolExecutor,
}


def available_backends() -> List[str]:
    """Names accepted by :func:`resolve_executor` (CLI ``--backend`` choices)."""
    return sorted(EXECUTOR_BACKENDS)


def resolve_executor(backend: str, workers: int = 1, *,
                     hosts: Optional[Sequence[str]] = None,
                     worker_token: Optional[str] = None) -> Executor:
    """Instantiate an executor by backend name.

    ``workers <= 0`` selects :func:`default_worker_count` workers.
    ``hosts``/``worker_token`` configure the socket backend's multi-host
    shape (pre-started ``repro.parallel.worker --listen`` daemons) and are
    rejected for every other backend.
    """
    key = backend.lower()
    if key == "socket" and key not in EXECUTOR_BACKENDS:
        # registration happens when repro.parallel.distributed is imported;
        # resolve it for callers that only imported this module
        from . import distributed  # noqa: F401 - registers the backend
    if key not in EXECUTOR_BACKENDS:
        raise ValueError(
            f"unknown executor backend {backend!r}; "
            f"available: {available_backends()}")
    if key == "socket":
        return EXECUTOR_BACKENDS[key](workers, hosts=hosts,
                                      token=worker_token)
    if hosts or worker_token:
        raise ValueError(
            "--hosts/--worker-token are only meaningful with the socket "
            f"backend, not {backend!r}")
    return EXECUTOR_BACKENDS[key](workers)
