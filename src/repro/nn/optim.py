"""Gradient-descent optimizers operating on parameter dictionaries."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

ParamDict = Dict[str, np.ndarray]


def global_grad_norm(grads: ParamDict) -> float:
    """L2 norm of all gradients viewed as one flat vector."""
    total = 0.0
    for grad in grads.values():
        total += float(np.sum(grad ** 2))
    return float(np.sqrt(total))


def clip_gradients(grads: ParamDict, max_norm: float) -> ParamDict:
    """Scale gradients so that their global norm does not exceed ``max_norm``."""
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    norm = global_grad_norm(grads)
    if norm <= max_norm or norm == 0.0:
        return grads
    scale = max_norm / norm
    return {key: grad * scale for key, grad in grads.items()}


class SGD:
    """Stochastic gradient descent with optional momentum, weight decay and
    global-norm gradient clipping.

    The optimizer is stateless with respect to the model: it works on
    ``{name: array}`` dictionaries so that the federated stack can apply it to
    any parameter snapshot (global model, personalized model, masked model).
    """

    def __init__(self, lr: float, *, momentum: float = 0.0,
                 weight_decay: float = 0.0,
                 clip_norm: Optional[float] = None) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.clip_norm = clip_norm
        self._velocity: ParamDict = {}

    def step(self, params: ParamDict, grads: ParamDict) -> None:
        """Update ``params`` in place from ``grads``."""
        if self.clip_norm is not None:
            grads = clip_gradients(grads, self.clip_norm)
        for key, param in params.items():
            grad = grads.get(key)
            if grad is None:
                continue
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * param
            if self.momentum > 0.0:
                velocity = self._velocity.get(key)
                if velocity is None:
                    velocity = np.zeros_like(param)
                velocity = self.momentum * velocity + grad
                self._velocity[key] = velocity
                update = velocity
            else:
                update = grad
            param -= self.lr * update

    def reset_state(self) -> None:
        """Drop momentum buffers (used when a fresh local round starts)."""
        self._velocity = {}
