"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro.baselines import build_strategy
from repro.core import FedLPS
from repro.data import build_federated_dataset
from repro.federated import FederatedConfig, run_federated
from repro.models import build_model_for_dataset
from repro.systems import HETEROGENEITY_PRESETS, sample_device_fleet


class TestEndToEnd:
    def test_fedlps_learns_and_saves_compute_on_mnist(self):
        dataset = build_federated_dataset("mnist", 8, examples_per_client=50,
                                          seed=3)
        config = FederatedConfig(num_rounds=8, clients_per_round=3,
                                 local_iterations=6, batch_size=16, seed=3)
        builder = lambda: build_model_for_dataset("mnist", seed=3)
        fedlps = run_federated(FedLPS(), dataset, builder, config=config)
        fedavg = run_federated(build_strategy("fedavg"), dataset, builder,
                               config=config)
        chance = 1.0 / dataset.num_classes
        assert fedlps.final_accuracy() > 2 * chance
        assert fedlps.total_flops < fedavg.total_flops
        assert fedlps.total_time_seconds <= fedavg.total_time_seconds * 1.05

    def test_personalized_methods_beat_conventional_on_noniid(self):
        dataset = build_federated_dataset("cifar10", 8, examples_per_client=50,
                                          seed=5)
        config = FederatedConfig(num_rounds=8, clients_per_round=3,
                                 local_iterations=6, batch_size=16, seed=5)
        builder = lambda: build_model_for_dataset("cifar10", seed=5)
        fedper = run_federated(build_strategy("fedper"), dataset, builder,
                               config=config)
        fedavg = run_federated(build_strategy("fedavg"), dataset, builder,
                               config=config)
        assert fedper.final_accuracy() >= fedavg.final_accuracy() - 0.05

    def test_sparse_ratio_adaptation_records_ratios(self):
        dataset = build_federated_dataset("mnist", 6, examples_per_client=40,
                                          seed=1)
        config = FederatedConfig(num_rounds=5, clients_per_round=3,
                                 local_iterations=3, batch_size=10, seed=1)
        history = run_federated(FedLPS(), dataset,
                                lambda: build_model_for_dataset("mnist", seed=1),
                                config=config)
        for record in history.records:
            assert record.sparse_ratios
            assert all(0.0 < ratio <= 1.0
                       for ratio in record.sparse_ratios.values())

    def test_heterogeneity_levels_affect_round_time(self):
        dataset = build_federated_dataset("mnist", 8, examples_per_client=40,
                                          seed=2)
        config = FederatedConfig(num_rounds=4, clients_per_round=3,
                                 local_iterations=3, batch_size=10, seed=2)
        builder = lambda: build_model_for_dataset("mnist", seed=2)
        times = {}
        for level in ("none", "high"):
            # fix the bandwidth so only the compute capability varies
            fleet = sample_device_fleet(
                dataset.num_clients, levels=HETEROGENEITY_PRESETS[level],
                bandwidth_levels=(1.0,), seed=2)
            history = run_federated(build_strategy("fedavg"), dataset, builder,
                                    config=config, fleet=fleet)
            times[level] = history.total_time_seconds
        # synchronous rounds are slower when weak devices are present
        assert times["high"] >= times["none"]

    def test_reddit_language_model_pipeline(self):
        dataset = build_federated_dataset("reddit", 6, examples_per_client=50,
                                          seed=4)
        config = FederatedConfig(num_rounds=4, clients_per_round=3,
                                 local_iterations=4, batch_size=16,
                                 learning_rate=1.0, seed=4)
        history = run_federated(FedLPS(), dataset,
                                lambda: build_model_for_dataset("reddit", seed=4),
                                config=config)
        assert len(history) == 4
        assert np.isfinite(history.total_flops)
