"""Vectorized cohort training vs the per-client loop, bit-for-bit.

The batched engine (``repro.federated.batched``, ``repro.core
.sparse_training.learnable_sparse_training_cohort``) and its server wiring
(``FederatedConfig.batch_cohort``) promise EXACT equality with the
sequential per-client path: every returned parameter, metric and RNG
stream, across masks, patterns, proximal terms, momentum, clipping and
ragged dataset sizes.  These tests pin that contract — a single flipped
bit anywhere fails them.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.importance import initialize_importance
from repro.core.sparse_training import (learnable_sparse_training,
                                        learnable_sparse_training_cohort)
from repro.data.dataset import Dataset
from repro.federated import (client_batch_schedule, iterate_batches,
                             train_cohort_batched, train_locally)
from repro.models import build_mlp
from repro.sparsity import build_parameter_mask, random_pattern

INPUT_DIM = 6
NUM_CLASSES = 3


def _model():
    return build_mlp(INPUT_DIM, [5], NUM_CLASSES, seed=0)


def _dataset(n, seed):
    rng = np.random.default_rng(seed)
    return Dataset(rng.normal(size=(n, INPUT_DIM)),
                   rng.integers(0, NUM_CLASSES, size=n))


def _assert_results_equal(loop_results, batched_results):
    assert len(loop_results) == len(batched_results)
    for a, b in zip(loop_results, batched_results):
        assert set(a.params) == set(b.params)
        for key in a.params:
            np.testing.assert_array_equal(a.params[key], b.params[key])
        assert a.train_accuracy == b.train_accuracy
        assert a.train_loss == b.train_loss
        assert a.examples_seen == b.examples_seen


class TestBatchSchedule:
    @given(n_examples=st.integers(min_value=1, max_value=40),
           batch_size=st.integers(min_value=1, max_value=16),
           iterations=st.integers(min_value=0, max_value=12),
           seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=80, deadline=None)
    def test_matches_iterate_batches(self, n_examples, batch_size,
                                     iterations, seed):
        dataset = _dataset(n_examples, seed)
        loop_batches = list(iterate_batches(
            dataset, batch_size, iterations,
            rng=np.random.default_rng(seed)))
        schedule = client_batch_schedule(
            n_examples, batch_size, iterations,
            rng=np.random.default_rng(seed))
        assert len(schedule) == len(loop_batches) == iterations
        for indices, (x, y) in zip(schedule, loop_batches):
            np.testing.assert_array_equal(dataset.x[indices], x)
            np.testing.assert_array_equal(dataset.y[indices], y)
            assert len(indices) == min(batch_size, n_examples)


class TestTrainCohortBatched:
    @given(sizes=st.lists(st.integers(min_value=3, max_value=20),
                          min_size=2, max_size=4),
           momentum=st.sampled_from([0.0, 0.9]),
           clip_norm=st.sampled_from([None, 0.5]),
           prox_mu=st.sampled_from([0.0, 0.2]),
           masked=st.booleans(),
           seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_bit_identical_to_loop(self, sizes, momentum, clip_norm,
                                   prox_mu, masked, seed):
        model = _model()
        cohort = len(sizes)
        datasets = [_dataset(n, seed * 31 + i) for i, n in enumerate(sizes)]
        rng = np.random.default_rng(seed)
        base = model.get_parameters()
        starts = [{key: value + 0.01 * rng.normal(size=value.shape)
                   for key, value in base.items()} for _ in range(cohort)]
        patterns = masks = None
        if masked:
            patterns = [random_pattern(model, 0.5 + 0.5 * (i % 2),
                                       rng=np.random.default_rng(seed + i))
                        for i in range(cohort)]
            masks = [build_parameter_mask(model, pattern)
                     for pattern in patterns]
        kwargs = dict(iterations=3, batch_size=8, learning_rate=0.1,
                      momentum=momentum, clip_norm=clip_norm, prox_mu=prox_mu)
        loop = [train_locally(model, starts[i], datasets[i],
                              param_mask=None if masks is None else masks[i],
                              pattern=None if patterns is None
                              else patterns[i],
                              rng=np.random.default_rng(seed + 1000 + i),
                              **kwargs)
                for i in range(cohort)]
        batched = train_cohort_batched(
            model, starts, datasets, param_masks=masks, patterns=patterns,
            rngs=[np.random.default_rng(seed + 1000 + i)
                  for i in range(cohort)],
            **kwargs)
        _assert_results_equal(loop, batched)

    def test_shared_prox_center_and_trainable_keys(self):
        model = _model()
        sizes = [12, 5, 9]
        datasets = [_dataset(n, 7 + i) for i, n in enumerate(sizes)]
        base = model.get_parameters()
        center = {key: value + 0.05 for key, value in base.items()}
        keys = ["fc1.W", "fc1.b"]
        kwargs = dict(iterations=4, batch_size=8, learning_rate=0.1,
                      prox_mu=0.1, prox_center=center, trainable_keys=keys)
        loop = [train_locally(model, base, datasets[i],
                              rng=np.random.default_rng(50 + i), **kwargs)
                for i in range(len(sizes))]
        batched = train_cohort_batched(
            model, [base] * len(sizes), datasets,
            rngs=[np.random.default_rng(50 + i) for i in range(len(sizes))],
            **kwargs)
        _assert_results_equal(loop, batched)
        # frozen keys really stayed frozen in the batched run too
        for result in batched:
            np.testing.assert_array_equal(result.params["head.W"],
                                          base["head.W"])

    def test_per_client_learning_rates(self):
        model = _model()
        sizes = [10, 10]
        datasets = [_dataset(n, 90 + i) for i, n in enumerate(sizes)]
        base = model.get_parameters()
        rates = [0.1, 0.05]
        loop = [train_locally(model, base, datasets[i], iterations=3,
                              batch_size=8, learning_rate=rates[i],
                              rng=np.random.default_rng(60 + i))
                for i in range(2)]
        batched = train_cohort_batched(
            model, [base] * 2, datasets, iterations=3, batch_size=8,
            learning_rate=np.asarray(rates),
            rngs=[np.random.default_rng(60 + i) for i in range(2)])
        _assert_results_equal(loop, batched)


class TestLearnableSparseCohort:
    @pytest.mark.parametrize("sizes,kwargs", [
        ([20, 20, 20], {}),
        ([20, 7, 13], {}),
        ([20, 7, 13], dict(prox_mu=0.2)),
        ([20, 20, 20], dict(momentum=0.9, clip_norm=1.0)),
        ([20, 9, 14], dict(refresh_pattern_each_iteration=True)),
        ([20, 20, 20], dict(importance_learning_rate=0.02,
                            importance_lambda=0.3)),
    ], ids=["homog", "ragged", "ragged-prox", "momentum-clip",
            "ragged-refresh", "importance-lr"])
    def test_bit_identical_to_loop(self, sizes, kwargs):
        model = _model()
        cohort = len(sizes)
        datasets = [_dataset(n, 70 + i) for i, n in enumerate(sizes)]
        start = model.get_parameters()
        importances = [initialize_importance(model, seed=1000 + i)
                       for i in range(cohort)]
        ratios = [0.5, 0.75, 1.0][:cohort]
        common = dict(iterations=3, batch_size=8, learning_rate=0.1, **kwargs)
        loop = [learnable_sparse_training(
            model, start, importances[i], datasets[i],
            sparse_ratio=ratios[i], rng=np.random.default_rng(100 + i),
            **common) for i in range(cohort)]
        batched = learnable_sparse_training_cohort(
            model, start, importances, datasets, sparse_ratios=ratios,
            rngs=[np.random.default_rng(100 + i) for i in range(cohort)],
            **common)
        for a, b in zip(loop, batched):
            for key in a.personalized_params:
                np.testing.assert_array_equal(a.personalized_params[key],
                                              b.personalized_params[key])
                np.testing.assert_array_equal(a.residual[key],
                                              b.residual[key])
            for name in a.importance.scores:
                np.testing.assert_array_equal(a.importance.scores[name],
                                              b.importance.scores[name])
            assert set(a.pattern) == set(b.pattern)
            for name in a.pattern:
                np.testing.assert_array_equal(a.pattern[name],
                                              b.pattern[name])
            assert a.train_loss == b.train_loss
            assert a.train_accuracy == b.train_accuracy
            assert a.examples_seen == b.examples_seen
            assert a.sparse_ratio == b.sparse_ratio


def _history_key(history):
    return json.dumps(json.loads(json.dumps(history.to_dict())),
                      sort_keys=True)


def _small(preset_name="mnist", **overrides):
    from repro.experiments import preset_for, scaled

    base = dict(num_clients=8, num_rounds=2, clients_per_round=4,
                examples_per_client=20, local_iterations=2, batch_size=8,
                seed=11)
    base.update(overrides)
    return scaled(preset_for(preset_name), **base)


class TestEndToEnd:
    @pytest.mark.parametrize("method", ["fedavg", "fedprox", "fedlps", "oort"])
    def test_histories_identical_with_batching(self, method):
        from repro.experiments import run_method, scaled

        preset = _small()
        default = run_method(method, preset)
        batched = run_method(method, scaled(preset, batch_cohort=True))
        assert _history_key(default) == _history_key(batched)

    @pytest.mark.parametrize("method", ["heterofl", "fedavg"],
                             ids=["strategy-fallback", "model-fallback"])
    def test_fallback_paths_identical(self, method):
        """Strategies/models without a batched path fall back to the loop."""
        from repro.experiments import run_method, scaled

        preset = _small("reddit" if method == "fedavg" else "mnist")
        default = run_method(method, preset)
        batched = run_method(method, scaled(preset, batch_cohort=True))
        assert _history_key(default) == _history_key(batched)

    def test_supervised_execution_disables_batching(self):
        from repro.experiments import run_method, scaled

        preset = _small(max_retries=1)
        default = run_method("fedavg", preset)
        batched = run_method("fedavg", scaled(preset, batch_cohort=True))
        assert _history_key(default) == _history_key(batched)


class TestGoldenParity:
    @pytest.mark.parametrize("method", ["fedavg", "fedlps", "fedprox"])
    def test_batched_run_reproduces_golden_fixture(self, method):
        """The batched path replays pinned fixtures with ZERO regeneration."""
        import importlib.util
        from pathlib import Path

        from repro.experiments import run_method, scaled

        spec = importlib.util.spec_from_file_location(
            "golden_fixtures",
            Path(__file__).resolve().parents[1] / "fixtures"
            / "regenerate_golden.py")
        golden = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(golden)
        payload = json.loads(golden.fixture_path(method).read_text())
        preset = scaled(golden.golden_preset("ideal"), batch_cohort=True)
        history = run_method(method, preset)
        assert json.loads(json.dumps(history.to_dict())) == payload["history"]
