"""Length-prefixed binary framing for the distributed socket backend.

Every message on a :class:`~repro.parallel.distributed.SocketExecutor`
connection is one *frame*: a fixed 13-byte header followed by an opaque
payload.  The header is ``magic (4s) | kind (B) | length (Q)`` in network
byte order; the magic pins the protocol (a peer speaking anything else
fails immediately instead of mis-framing), the kind tags what the payload
means (see :class:`FrameKind`), and the length is the exact payload byte
count.  Framing is deliberately dumb — no compression, no checksums, no
negotiation — because everything riding it (pickles, broadcast segment
bytes, codec wire blocks) is already a self-describing byte string.

The module is pure bytes-in/bytes-out so it can be tested exhaustively
without a socket: :func:`encode_frame` produces a frame, and
:class:`FrameDecoder` consumes an arbitrarily-chunked byte stream and
yields complete ``(kind, payload)`` pairs — TCP gives no message
boundaries, so the decoder must be (and is, property-tested) correct under
every possible split of the stream.  :func:`read_frame`/:func:`send_frame`
are the thin blocking-socket wrappers the executor and worker use, and
:func:`worker_handshake`/:func:`server_handshake` implement the mutual
challenge-response that gates every connection (see the handshake section
below).

Oversized frames are a protocol error, not an allocation: the decoder
checks the declared length against ``max_frame_bytes`` *before* buffering
the payload, so a corrupt (or hostile) header cannot ask the receiver to
allocate gigabytes.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import struct
from typing import List, Optional, Tuple

#: protocol magic: any connection not starting every frame with these four
#: bytes is not a repro peer (or the stream lost sync) — fail fast
MAGIC = b"RPF1"

_HEADER = struct.Struct(">4sBQ")
HEADER_BYTES = _HEADER.size

#: frames larger than this are refused on both send and receive; generous
#: enough for a full session broadcast (dataset blocks + pickled skeleton)
#: while still catching corrupt headers before they become allocations
MAX_FRAME_BYTES = 1 << 31


class FrameKind:
    """Frame type tags of the worker protocol (one byte on the wire).

    ``HELLO``/``WELCOME``/``AUTH`` are the mutual challenge-response
    handshake (:func:`worker_handshake`/:func:`server_handshake`): the
    worker opens with a nonce, the executor answers with its own nonce
    plus an HMAC proof of the shared token, and the worker closes with
    its proof — so each side verifies the other before any pickled
    payload is accepted, and the token itself never crosses the wire.
    ``TASK`` carries one pickled ``(task_id, fn, payload)``; the worker
    answers with exactly one ``RESULT`` or ``FAILED`` for it,
    interleaving any number of ``FETCH``/``BLOB`` exchanges before that
    to pull broadcast segments it has not cached (content-addressed by
    digest, so a segment is fetched once per worker per publication).
    ``BYE`` is a clean shutdown in either direction.
    """

    HELLO = 1
    WELCOME = 2
    TASK = 3
    RESULT = 4
    FAILED = 5
    FETCH = 6
    BLOB = 7
    BYE = 8
    AUTH = 9

    #: every tag a conforming peer may put on the wire
    ALL = (HELLO, WELCOME, TASK, RESULT, FAILED, FETCH, BLOB, BYE, AUTH)


class FrameError(Exception):
    """A malformed frame: bad magic, unknown kind, or oversized length."""


class ConnectionClosed(Exception):
    """The peer went away (clean EOF or mid-frame truncation).

    ``partial`` distinguishes a socket that closed between frames (an
    orderly, if unannounced, departure) from one that died mid-frame
    (a killed worker, a cut cable): supervision treats both as a lost
    worker, but logs want the difference.
    """

    def __init__(self, message: str, *, partial: bool = False) -> None:
        super().__init__(message)
        self.partial = partial


def encode_frame(kind: int, payload: bytes,
                 max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """One wire-ready frame: header + payload."""
    if kind not in FrameKind.ALL:
        raise FrameError(f"unknown frame kind {kind!r}")
    if len(payload) > max_frame_bytes:
        raise FrameError(f"frame payload of {len(payload)} bytes exceeds "
                         f"the {max_frame_bytes}-byte limit")
    return _HEADER.pack(MAGIC, kind, len(payload)) + payload


class FrameDecoder:
    """Incremental frame parser over an arbitrarily-chunked byte stream.

    ``feed(data)`` buffers ``data`` and returns every frame completed by
    it, in order — zero, one or many; a frame split across any number of
    feeds is reassembled exactly.  The decoder validates the header as
    soon as the 13 header bytes are available, so bad magic and oversized
    lengths surface before their payloads are ever buffered.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._need: Optional[Tuple[int, int]] = None  # (kind, payload length)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Tuple[int, bytes]]:
        self._buffer.extend(data)
        frames: List[Tuple[int, bytes]] = []
        while True:
            if self._need is None:
                if len(self._buffer) < HEADER_BYTES:
                    return frames
                magic, kind, length = _HEADER.unpack_from(self._buffer)
                if magic != MAGIC:
                    raise FrameError(
                        f"bad frame magic {bytes(magic)!r} (expected "
                        f"{MAGIC!r}) — peer is not speaking this protocol")
                if kind not in FrameKind.ALL:
                    raise FrameError(f"unknown frame kind {kind}")
                if length > self.max_frame_bytes:
                    raise FrameError(
                        f"declared frame length {length} exceeds the "
                        f"{self.max_frame_bytes}-byte limit")
                del self._buffer[:HEADER_BYTES]
                self._need = (kind, length)
            kind, length = self._need
            if len(self._buffer) < length:
                return frames
            payload = bytes(self._buffer[:length])
            del self._buffer[:length]
            self._need = None
            frames.append((kind, payload))


def send_frame(sock, kind: int, payload: bytes) -> None:
    """Write one frame to a blocking socket."""
    sock.sendall(encode_frame(kind, payload))


def _recv_exactly(sock, count: int, *, anything_read: bool) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            partial = anything_read or bool(chunks)
            raise ConnectionClosed(
                "peer closed the connection mid-frame" if partial
                else "peer closed the connection", partial=partial)
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock, max_frame_bytes: int = MAX_FRAME_BYTES
               ) -> Tuple[int, bytes]:
    """Read exactly one frame from a blocking socket.

    Raises :class:`ConnectionClosed` on EOF — ``partial=False`` when the
    stream ended cleanly between frames, ``partial=True`` when it died
    inside one — and :class:`FrameError` on a malformed header.
    """
    header = _recv_exactly(sock, HEADER_BYTES, anything_read=False)
    magic, kind, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if kind not in FrameKind.ALL:
        raise FrameError(f"unknown frame kind {kind}")
    if length > max_frame_bytes:
        raise FrameError(f"declared frame length {length} exceeds the "
                         f"{max_frame_bytes}-byte limit")
    payload = _recv_exactly(sock, length, anything_read=True) if length \
        else b""
    return kind, payload


# --------------------------------------------------------------- handshake
#
# Mutual HMAC-SHA256 challenge-response over the shared token.  Design
# constraints, in order:
#
# * the token must never appear on the wire (an eavesdropper — or anyone
#   who connects to a ``--listen`` daemon and reads its first frame —
#   learns nothing that lets them authenticate);
# * NOTHING from an unauthenticated peer is ever unpickled: every
#   handshake payload is fixed-length raw bytes, validated by length and
#   verified with a constant-time comparison before the peer is trusted;
# * each side proves itself to the other.  The worker always speaks
#   first regardless of which side dialed, so one frame flow covers both
#   deployment shapes — and the ``--listen`` daemon in particular admits
#   no TASK frame until the connecting executor has proven the token.
#
# Frame flow:      worker                               executor
#                  HELLO(worker_nonce + pid)        ->
#                                                   <- WELCOME(server_nonce
#                                                        + MAC_s)
#                  AUTH(MAC_w)                      ->
#
# with MAC_s = HMAC(token, "server" label | worker_nonce | server_nonce)
# and  MAC_w = HMAC(token, "worker" label | server_nonce | worker_nonce).
# Each proof binds both nonces under a direction-distinct label, so a
# transcript cannot be replayed into another session and a peer's proof
# cannot be reflected back at it.

#: how long connection establishment / authentication may take per peer
HANDSHAKE_TIMEOUT = 15.0

NONCE_BYTES = 32
_MAC_BYTES = hashlib.sha256().digest_size
_PID = struct.Struct(">Q")
_SERVER_LABEL = b"repro-socket-server-v1"
_WORKER_LABEL = b"repro-socket-worker-v1"


def _proof(token: str, label: bytes, *nonces: bytes) -> bytes:
    mac = hmac.new(token.encode("utf-8"), digestmod=hashlib.sha256)
    mac.update(label)
    for nonce in nonces:
        mac.update(nonce)
    return mac.digest()


def worker_handshake(sock, token: str,
                     max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
    """Worker side: prove the token and verify the executor's proof.

    Raises :class:`FrameError` if the peer's WELCOME is malformed or its
    proof does not verify — i.e. the connecting party does not hold the
    token and must not be served a single task.
    """
    worker_nonce = os.urandom(NONCE_BYTES)
    send_frame(sock, FrameKind.HELLO,
               worker_nonce + _PID.pack(os.getpid()))
    kind, payload = read_frame(sock, max_frame_bytes)
    if kind != FrameKind.WELCOME \
            or len(payload) != NONCE_BYTES + _MAC_BYTES:
        raise FrameError("malformed WELCOME during handshake")
    server_nonce = payload[:NONCE_BYTES]
    expected = _proof(token, _SERVER_LABEL, worker_nonce, server_nonce)
    if not hmac.compare_digest(payload[NONCE_BYTES:], expected):
        raise FrameError("executor failed authentication (token mismatch)")
    send_frame(sock, FrameKind.AUTH,
               _proof(token, _WORKER_LABEL, server_nonce, worker_nonce))


def server_handshake(sock, token: str,
                     max_frame_bytes: int = MAX_FRAME_BYTES) -> int:
    """Executor side: challenge the worker, verify its proof.

    Returns the remote worker's pid.  Raises :class:`FrameError` when
    the peer is malformed or fails verification; nothing the peer sent
    has been unpickled either way.
    """
    kind, payload = read_frame(sock, max_frame_bytes)
    if kind != FrameKind.HELLO \
            or len(payload) != NONCE_BYTES + _PID.size:
        raise FrameError("malformed HELLO during handshake")
    worker_nonce = payload[:NONCE_BYTES]
    (remote_pid,) = _PID.unpack(payload[NONCE_BYTES:])
    server_nonce = os.urandom(NONCE_BYTES)
    send_frame(sock, FrameKind.WELCOME, server_nonce + _proof(
        token, _SERVER_LABEL, worker_nonce, server_nonce))
    kind, payload = read_frame(sock, max_frame_bytes)
    if kind != FrameKind.AUTH or len(payload) != _MAC_BYTES:
        raise FrameError("malformed AUTH during handshake")
    expected = _proof(token, _WORKER_LABEL, server_nonce, worker_nonce)
    if not hmac.compare_digest(payload, expected):
        raise FrameError("worker failed authentication (token mismatch)")
    return remote_pid
