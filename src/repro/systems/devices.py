"""Device capability model for system heterogeneity.

Following the paper, every client is assigned a capability level
``z_k`` from ``{1, 1/2, 1/4, 1/8, 1/16}``; the strongest level corresponds to
an Adreno-630-class accelerator (727 GFLOP/s).  Local resources can fluctuate
between rounds because users run other tasks concurrently, which the paper
exercises in the "Dyn" ablation rows of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

#: peak throughput (FLOP/s) of the z = 1 reference device (Adreno 630).
REFERENCE_FLOPS_PER_SECOND = 727e9

#: reference uplink/downlink bandwidth in bytes per second (~20 Mbit/s edge link).
REFERENCE_BANDWIDTH_BYTES = 2.5e6

#: the five capability tiers used throughout the paper.
CAPABILITY_LEVELS = (1.0, 1 / 2, 1 / 4, 1 / 8, 1 / 16)

#: smallest sub-model fraction any device is assumed to be able to host.
#: The paper's backbones (VGG11-16) are 2-3 orders of magnitude larger than
#: the CPU-sized models in this reproduction, so a 1/16-capability device can
#: still hold a quarter of *our* backbone even though it could only hold 1/16
#: of VGG.  Capability still scales the simulated *time* cost, so stragglers
#: and heterogeneity effects are preserved; this floor only prevents the
#: scaled-down models from being pruned into uselessness.  See DESIGN.md.
MIN_AFFORDABLE_RATIO = 0.4


def affordable_ratio(capability: float, *,
                     floor: float = MIN_AFFORDABLE_RATIO) -> float:
    """Largest sub-model fraction a device of ``capability`` can host."""
    if not 0.0 < capability <= 1.0:
        raise ValueError(f"capability must be in (0, 1], got {capability}")
    return max(float(capability), floor)

#: heterogeneity presets of the Figure 7/8 sweep.
HETEROGENEITY_PRESETS: Dict[str, Sequence[float]] = {
    "none": (1.0,),
    "low": (1.0, 1 / 2),
    "median": (1.0, 1 / 2, 1 / 4),
    "high": CAPABILITY_LEVELS,
}


@dataclass
class DeviceProfile:
    """Static description of one edge device plus its fluctuation behaviour."""

    client_id: int
    capability: float
    bandwidth_scale: float = 1.0
    dynamic: bool = False
    fluctuation: float = 0.3

    def __post_init__(self) -> None:
        if not 0.0 < self.capability <= 1.0:
            raise ValueError(f"capability must be in (0, 1], got {self.capability}")
        if self.bandwidth_scale <= 0:
            raise ValueError("bandwidth_scale must be positive")
        if not 0.0 <= self.fluctuation < 1.0:
            raise ValueError("fluctuation must be in [0, 1)")

    @property
    def flops_per_second(self) -> float:
        """Peak local compute throughput in FLOP/s."""
        return self.capability * REFERENCE_FLOPS_PER_SECOND

    @property
    def bandwidth_bytes_per_second(self) -> float:
        """Peak local link bandwidth in bytes/s."""
        return self.bandwidth_scale * REFERENCE_BANDWIDTH_BYTES

    def available_capability(self, round_index: int, *, seed: int = 0) -> float:
        """Effective capability in a given round.

        Static devices always run at their peak; dynamic devices lose up to
        ``fluctuation`` of their capacity to background tasks, sampled
        deterministically from ``(round_index, client_id, seed)`` so repeated
        simulations agree.
        """
        if not self.dynamic:
            return self.capability
        rng = np.random.default_rng(
            (seed + 1) * 1_000_003 + self.client_id * 7919 + round_index)
        drop = rng.uniform(0.0, self.fluctuation)
        return self.capability * (1.0 - drop)


@dataclass
class DeviceFleet:
    """The set of device profiles participating in a federation."""

    profiles: Dict[int, DeviceProfile] = field(default_factory=dict)

    def __getitem__(self, client_id: int) -> DeviceProfile:
        if client_id not in self.profiles:
            raise KeyError(f"no device profile for client {client_id}")
        return self.profiles[client_id]

    def __len__(self) -> int:
        return len(self.profiles)

    @property
    def client_ids(self) -> np.ndarray:
        ids = np.asarray(sorted(self.profiles.keys()), dtype=np.int64)
        ids.flags.writeable = False
        return ids

    def capabilities(self) -> Dict[int, float]:
        return {cid: profile.capability for cid, profile in self.profiles.items()}


#: default bandwidth tiers of :func:`sample_device_fleet`
DEFAULT_BANDWIDTH_LEVELS = (1.0, 0.75, 0.5)


def sample_device_profile(client_id: int, *,
                          levels: Sequence[float] = CAPABILITY_LEVELS,
                          dynamic: bool = False, seed: int = 0,
                          bandwidth_levels: Sequence[float] = DEFAULT_BANDWIDTH_LEVELS
                          ) -> DeviceProfile:
    """One client's profile, pure in ``(seed, client_id)``.

    Bit-identical to the profile :func:`sample_device_fleet` assigns the
    same client: the eager sampler draws ``choice(levels)`` then
    ``choice(bandwidth_levels)`` per client from one sequential PCG64
    stream, and each bounded ``choice`` over a non-singleton population
    consumes exactly one buffered 32-bit half of a 64-bit PCG64 word (a
    singleton population consumes nothing).  Jumping the bit generator to
    client ``k``'s half-word offset with ``advance`` therefore reproduces
    the sequential draws without generating clients ``0..k-1``.

    This deliberately mirrors the historical stream instead of seeding an
    independent generator per client, because the contract is bit-identity
    with existing eager fleets (golden fixtures included).  It leans on two
    numpy properties pinned by tests/federated/test_fleet.py's equivalence
    suite: the buffered 32-bit bounded-``choice`` path, and its Lemire
    rejection (probability ~2**-32 per draw, which would consume an extra
    half-word) not triggering for the seeds/sizes in use.  If a numpy
    upgrade changes either, that suite fails loudly — update both samplers
    together.  The bounded form of the claim: a fleet of N clients makes
    ~2N draws, so roughly N*2**-31 of seeds contain a rejection that would
    shift every *eager* profile after it while the lazy path reproduces
    the unshifted stream.  At the fleet scales where that probability
    stops being negligible (millions of clients) the eager sampler is
    never built, so the lazy path's own purity in ``(seed, client_id)`` —
    which holds unconditionally — is the operative contract.
    """
    if client_id < 0:
        raise ValueError("client_id must be non-negative")
    if not levels:
        raise ValueError("levels must not be empty")
    halves = int(len(levels) > 1) + int(len(bandwidth_levels) > 1)
    rng = np.random.default_rng(seed)
    if halves == 2:
        rng.bit_generator.advance(client_id)
    elif halves == 1:
        rng.bit_generator.advance(client_id // 2)
        if client_id % 2:
            # burn the first 32-bit half of the word (range 2 never rejects)
            rng.integers(0, 2)
    capability = float(rng.choice(levels))
    bandwidth = float(rng.choice(bandwidth_levels))
    return DeviceProfile(client_id=client_id, capability=capability,
                         bandwidth_scale=bandwidth, dynamic=dynamic)


class VirtualDeviceFleet(DeviceFleet):
    """A device fleet whose profiles materialize lazily, O(cohort).

    Profiles come from :func:`sample_device_profile`, so any client's device
    is available in O(1) without sampling the rest of the fleet and matches
    :func:`sample_device_fleet` bit-for-bit.  A small memo keeps the current
    working set of profiles; ``capabilities()`` (an O(N) summary) remains
    available but materializes every profile.
    """

    #: memoized profiles kept per fleet (a cohort plus slack)
    MEMO_LIMIT = 4096

    def __init__(self, num_clients: int, *,
                 levels: Sequence[float] = CAPABILITY_LEVELS,
                 dynamic: bool = False, seed: int = 0,
                 bandwidth_levels: Sequence[float] = DEFAULT_BANDWIDTH_LEVELS
                 ) -> None:
        if num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if not levels:
            raise ValueError("levels must not be empty")
        super().__init__(profiles={})
        self.num_clients = num_clients
        self.levels = tuple(levels)
        self.bandwidth_levels = tuple(bandwidth_levels)
        self.dynamic = dynamic
        self.seed = seed
        self._ids: np.ndarray | None = None

    def __getitem__(self, client_id: int) -> DeviceProfile:
        if not 0 <= client_id < self.num_clients:
            raise KeyError(f"no device profile for client {client_id}")
        profile = self.profiles.get(client_id)
        if profile is None:
            profile = sample_device_profile(
                client_id, levels=self.levels, dynamic=self.dynamic,
                seed=self.seed, bandwidth_levels=self.bandwidth_levels)
            if len(self.profiles) >= self.MEMO_LIMIT:
                self.profiles.clear()
            self.profiles[client_id] = profile
        return profile

    def __len__(self) -> int:
        return self.num_clients

    @property
    def client_ids(self) -> np.ndarray:
        ids = self._ids
        if ids is None or len(ids) != self.num_clients:
            ids = np.arange(self.num_clients, dtype=np.int64)
            ids.flags.writeable = False
            self._ids = ids
        return ids

    def capabilities(self) -> Dict[int, float]:
        return {cid: self[cid].capability for cid in range(self.num_clients)}

    def __getstate__(self) -> Dict[str, object]:
        # the memo is a cache, not state: ship only the pure description so
        # broadcast payloads stay O(1) regardless of fleet size
        return {"num_clients": self.num_clients, "levels": self.levels,
                "bandwidth_levels": self.bandwidth_levels,
                "dynamic": self.dynamic, "seed": self.seed}

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__init__(state["num_clients"], levels=state["levels"],
                      dynamic=state["dynamic"], seed=state["seed"],
                      bandwidth_levels=state["bandwidth_levels"])


def sample_device_fleet(num_clients: int, *, levels: Sequence[float] = CAPABILITY_LEVELS,
                        dynamic: bool = False, seed: int = 0,
                        bandwidth_levels: Sequence[float] = DEFAULT_BANDWIDTH_LEVELS,
                        lazy: bool = False) -> DeviceFleet:
    """Sample a fleet of devices with capabilities drawn uniformly from ``levels``.

    This mirrors the paper's configuration: capability levels are sampled
    uniformly across clients, and bandwidth varies moderately and
    independently of compute.  ``lazy=True`` returns a
    :class:`VirtualDeviceFleet` with identical profiles but O(1)
    construction.
    """
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    if not levels:
        raise ValueError("levels must not be empty")
    if lazy:
        return VirtualDeviceFleet(num_clients, levels=levels, dynamic=dynamic,
                                  seed=seed, bandwidth_levels=bandwidth_levels)
    rng = np.random.default_rng(seed)
    profiles: Dict[int, DeviceProfile] = {}
    for client_id in range(num_clients):
        capability = float(rng.choice(levels))
        bandwidth = float(rng.choice(bandwidth_levels))
        profiles[client_id] = DeviceProfile(
            client_id=client_id, capability=capability,
            bandwidth_scale=bandwidth, dynamic=dynamic)
    return DeviceFleet(profiles)


def fleet_for_heterogeneity(num_clients: int, level: str, *, dynamic: bool = False,
                            seed: int = 0, lazy: bool = False) -> DeviceFleet:
    """Build a fleet for one of the paper's heterogeneity presets."""
    if level not in HETEROGENEITY_PRESETS:
        raise ValueError(
            f"unknown heterogeneity level {level!r}; "
            f"choose from {sorted(HETEROGENEITY_PRESETS)}")
    return sample_device_fleet(num_clients, levels=HETEROGENEITY_PRESETS[level],
                               dynamic=dynamic, seed=seed, lazy=lazy)
