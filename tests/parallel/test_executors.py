"""Unit tests for the pluggable executor backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import (EXECUTOR_BACKENDS, ProcessPoolExecutor,
                            SerialExecutor, ThreadPoolExecutor,
                            available_backends, clone_via_pickle,
                            default_worker_count, resolve_executor)


# task functions live at module level so the spawn-based process backend can
# import them in its workers
def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x


def _bump(payload):
    payload["count"] += 1
    return payload["count"]


class TestResolve:
    def test_available_backends(self):
        assert available_backends() == ["process", "serial", "socket", "thread"]
        assert set(EXECUTOR_BACKENDS) == {"serial", "thread", "process", "socket"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            resolve_executor("gpu")

    def test_resolves_requested_types(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        with resolve_executor("thread", 2) as executor:
            assert isinstance(executor, ThreadPoolExecutor)
            assert executor.workers == 2

    def test_nonpositive_workers_means_auto(self):
        with resolve_executor("thread", 0) as executor:
            assert executor.workers == default_worker_count()
            assert executor.workers >= 1

    def test_serial_is_always_single_worker(self):
        assert SerialExecutor(workers=8).workers == 1


class TestCloneViaPickle:
    def test_arrays_survive_bitwise(self):
        array = np.random.default_rng(0).standard_normal(64)
        clone = clone_via_pickle({"a": array})["a"]
        assert clone is not array
        assert np.array_equal(clone, array)
        assert clone.dtype == array.dtype

    def test_shared_references_stay_shared(self):
        inner = {"x": 1}
        a, b = clone_via_pickle((inner, inner))
        assert a is b


class TestSerialExecutor:
    def test_map_ordered(self):
        with SerialExecutor() as executor:
            assert executor.map_ordered(_square, [1, 2, 3]) == [1, 4, 9]

    def test_map_unordered_tags_indices(self):
        with SerialExecutor() as executor:
            assert executor.map_unordered(_square, [2, 3]) == [(0, 4), (1, 9)]

    def test_empty_items(self):
        with SerialExecutor() as executor:
            assert executor.map_ordered(_square, []) == []
            assert executor.map_unordered(_square, []) == []

    def test_errors_propagate(self):
        with SerialExecutor() as executor:
            with pytest.raises(ValueError, match="three"):
                executor.map_ordered(_fail_on_three, [1, 2, 3])

    def test_runs_in_place(self):
        # the serial backend is the reference: tasks see the real objects
        payload = {"count": 0}
        with SerialExecutor() as executor:
            assert executor.map_ordered(_bump, [payload]) == [1]
        assert payload["count"] == 1


class TestThreadPoolExecutor:
    def test_map_ordered_preserves_order(self):
        with ThreadPoolExecutor(4) as executor:
            assert executor.map_ordered(_square, list(range(10))) == \
                [x * x for x in range(10)]

    def test_map_unordered_returns_every_result(self):
        with ThreadPoolExecutor(4) as executor:
            results = executor.map_unordered(_square, list(range(10)))
        assert sorted(results) == [(i, i * i) for i in range(10)]

    def test_errors_propagate(self):
        with ThreadPoolExecutor(2) as executor:
            with pytest.raises(ValueError, match="three"):
                executor.map_ordered(_fail_on_three, [1, 2, 3, 4])

    def test_tasks_run_on_private_copies(self):
        # mutations inside a task must never leak back into the caller's
        # objects: that is what makes thread results match process results
        payload = {"count": 0}
        with ThreadPoolExecutor(2) as executor:
            assert executor.map_ordered(_bump, [payload, payload]) == [1, 1]
        assert payload["count"] == 0


class TestProcessPoolExecutor:
    @pytest.fixture(scope="class")
    def pool(self):
        # spawn start-up is expensive; share one pool across the class
        with ProcessPoolExecutor(2) as executor:
            yield executor

    def test_map_ordered_and_unordered(self, pool):
        assert pool.map_ordered(_square, [1, 2, 3]) == [1, 4, 9]
        assert sorted(pool.map_unordered(_square, [2, 3])) == [(0, 4), (1, 9)]

    def test_errors_propagate(self, pool):
        with pytest.raises(ValueError, match="three"):
            pool.map_ordered(_fail_on_three, [3])

    def test_tasks_run_on_private_copies(self, pool):
        payload = {"count": 0}
        assert pool.map_ordered(_bump, [payload]) == [1]
        assert payload["count"] == 0

    def test_pool_is_persistent_across_maps(self, pool):
        # the same pool serves many map calls (one per round in the trainer)
        # without re-spawning; warm_up is allowed at any point
        pool.warm_up()
        for _ in range(3):
            assert pool.map_ordered(_square, [2]) == [4]


class TestLifecycle:
    """close() semantics: exactly once, deterministic, loud on reuse."""

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_closed_executor_raises_on_reuse(self, backend):
        executor = resolve_executor(backend, 2)
        executor.close()
        assert executor.closed
        with pytest.raises(RuntimeError, match="closed"):
            executor.map_ordered(_square, [1])
        with pytest.raises(RuntimeError, match="closed"):
            executor.map_unordered(_square, [1])

    def test_closed_process_executor_raises_on_reuse(self):
        executor = ProcessPoolExecutor(1)
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.map_ordered(_square, [1])

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_close_is_idempotent(self, backend):
        executor = resolve_executor(backend, 1)
        executor.close()
        executor.close()  # second close must not raise
        assert executor.closed

    def test_context_manager_closes_even_on_task_exception(self):
        with pytest.raises(ValueError, match="three"):
            with ThreadPoolExecutor(2) as executor:
                executor.map_ordered(_fail_on_three, [1, 3])
        assert executor.closed
        with pytest.raises(RuntimeError, match="closed"):
            executor.map_ordered(_square, [1])


class TestPayloadWitness:
    """The observation hook behind the bytes-per-round accounting."""

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_witness_sees_every_payload(self, backend):
        seen = []
        with resolve_executor(backend, 2) as executor:
            executor.payload_witness = seen.append
            executor.map_ordered(_square, [1, 2, 3])
            executor.map_unordered(_square, [4])
        assert sorted(seen) == [1, 2, 3, 4]
