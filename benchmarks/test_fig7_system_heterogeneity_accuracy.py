"""Figure 7: test accuracy under different system-heterogeneity levels."""

from __future__ import annotations

import pytest

from repro.experiments import heterogeneity_sweep

from conftest import bench_overrides, print_rows

DATASETS = ("cifar10", "tinyimagenet")
METHODS = ("fedavg", "fedmp", "fedspa", "fedlps")
LEVELS = ("low", "median", "high")


@pytest.mark.benchmark(group="figure7")
def test_fig7_heterogeneity_accuracy(benchmark):
    overrides = bench_overrides()

    def run():
        rows = []
        for dataset in DATASETS:
            rows.extend(heterogeneity_sweep(dataset=dataset, levels=LEVELS,
                                            methods=METHODS,
                                            overrides=overrides))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_rows("Figure 7: accuracy vs system heterogeneity", rows)
    assert len(rows) == len(DATASETS) * len(METHODS) * len(LEVELS)
    assert all(0.0 <= row["accuracy"] <= 1.0 for row in rows)
