"""Shared-memory broadcast of round-invariant fan-out payloads.

Per-round client fan-out used to pickle the full global model and parameters
once *per selected client*: every task payload carried its own copy of the
round-invariant state.  This module ships that state once per round instead:

* the float64 parameter blocks (the global model weights) are written raw
  into a :mod:`multiprocessing.shared_memory` segment, described by a small
  manifest of ``(key, dtype, shape, offset)`` entries — they are never
  pickled at all;
* everything else that is invariant across the round's tasks (the strategy
  template, the model architecture, the dataset, the scenario-bearing
  config) is pickled **once** into the same segment;
* each task payload shrinks to a :class:`BroadcastHandle` (segment name +
  manifest, a few hundred bytes) plus the per-client ``(client_id, state)``.

Workers reconstruct the payload through :func:`materialize`, which keeps a
small cache keyed by ``(round_index, digest)`` in *thread-local* storage.
Thread-local is the common denominator for both pool backends: a process
worker runs its tasks on one thread (so the cache is per process), and a
thread worker's tasks never share the cache with a sibling thread (so
concurrent tasks cannot race on the materialized scratch objects).  The net
effect is that the round-invariant payload is deserialized at most once per
worker per round, exactly mirroring the sequential-reuse semantics of the
serial reference backend.

When shared memory is unavailable the broadcast degrades to carrying the
bytes inline in the handle (still deserialized once per worker thanks to the
cache, but re-pickled per task); callers never need to care.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..util import BoundedLRU
from .codec import EncodedBlock, EncodedParams, decode_block

try:  # pragma: no cover - import succeeds on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic builds without _posixshmem
    _shared_memory = None

#: how many materialized broadcasts each worker thread keeps around; rounds
#: are processed in order, so the live set is the current round's local-update
#: and evaluation broadcasts plus a little slack
CACHE_LIMIT = 4

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

# ------------------------------------------------------------------ stats
_stats_lock = threading.Lock()
_STATS: Dict[str, int] = {}


def _stats_template() -> Dict[str, int]:
    return {
        "publishes": 0,            # broadcasts created by the server
        "param_packs": 0,          # publishes that carried parameter blocks
        "param_bytes": 0,          # raw (never pickled) parameter bytes
        "blob_bytes": 0,           # pickled round-invariant payload bytes
        "inline_publishes": 0,     # publishes that fell back to inline bytes
        "materializations": 0,     # worker-side cache misses (same process)
        "materialize_hits": 0,     # worker-side cache hits (same process)
    }


_STATS.update(_stats_template())


def reset_broadcast_stats() -> None:
    """Zero the module counters (bench/test bookkeeping)."""
    with _stats_lock:
        _STATS.update(_stats_template())


def broadcast_stats() -> Dict[str, int]:
    """Snapshot of the module counters.

    Server-side counters (``publishes``/``param_bytes``/``blob_bytes``) are
    always accurate; the ``materializ*`` counters only observe workers that
    share the server's process, i.e. the thread backend.
    """
    with _stats_lock:
        return dict(_STATS)


def _bump(**deltas: int) -> None:
    with _stats_lock:
        for key, delta in deltas.items():
            _STATS[key] += delta


# ---------------------------------------------------------------- handles
@dataclass(frozen=True)
class BlockSpec:
    """Location of one parameter (sub-)array inside the broadcast segment.

    A raw block is one spec (``codec="raw"``, ``part=0``) whose
    ``dtype``/``shape`` describe the parameter array itself — the historical
    manifest entry, unchanged.  A codec-encoded block is one spec per wire
    sub-array (bitmaps, codes, codebooks, values) sharing a ``key``; each
    spec's ``dtype``/``shape`` describe its *part*, and part 0 carries the
    decoder metadata ``(logical_dtype, logical_shape, codec_meta)`` in
    ``meta``.  The defaults keep old pickled specs and existing callers
    working untouched.
    """

    key: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int
    nbytes: int
    codec: str = "raw"
    part: int = 0
    meta: Tuple = ()


@dataclass(frozen=True)
class BroadcastHandle:
    """Picklable reference to a published broadcast.

    The handle is what rides in every task payload, so it stays small: the
    segment name, the parameter manifest and the blob span.  ``inline`` is
    only populated by the no-shared-memory fallback.
    """

    shm_name: Optional[str]
    manifest: Tuple[BlockSpec, ...]
    has_params: bool
    blob_offset: int
    blob_nbytes: int
    total_nbytes: int
    digest: str
    round_index: int
    creator_pid: int = -1
    inline: Optional[bytes] = field(default=None, repr=False)

    @property
    def cache_key(self) -> Tuple[int, str]:
        return (self.round_index, self.digest)


class Broadcast:
    """Server-side publication of one round's invariant fan-out payload.

    ``params`` (a ``{key: ndarray}`` dictionary, typically the global model
    parameters) is stored as raw float64 blocks; ``payload`` (everything else
    the tasks need) is pickled once.  Use as a context manager so the shared
    memory segment is unlinked deterministically once the round's fan-out has
    completed — workers copy out of the segment during :func:`materialize`,
    so the segment only needs to outlive the ``map_ordered`` call.
    """

    def __init__(self, payload: Any,
                 params: Optional[Mapping[str, np.ndarray]] = None, *,
                 encoded_params: Optional[EncodedParams] = None,
                 round_index: int = -1,
                 use_shared_memory: bool = True) -> None:
        if params is not None and encoded_params is not None:
            raise ValueError("pass either params or encoded_params, not both")
        blob = pickle.dumps(payload, protocol=_PICKLE_PROTOCOL)
        manifest: List[BlockSpec] = []
        blocks: List[np.ndarray] = []
        offset = 0
        for key in sorted(params) if params is not None else ():
            array = np.ascontiguousarray(params[key])
            manifest.append(BlockSpec(key=key, dtype=array.dtype.str,
                                      shape=tuple(array.shape), offset=offset,
                                      nbytes=array.nbytes))
            blocks.append(array)
            offset += array.nbytes
        if encoded_params is not None:
            # codec-tagged blocks: only the wire sub-arrays enter the
            # segment, so param_bytes below counts real wire bytes
            for key, block in sorted(encoded_params.blocks.items()):
                for part, sub in enumerate(block.arrays):
                    sub = np.ascontiguousarray(sub)
                    meta = (block.dtype, block.shape, block.meta) \
                        if part == 0 else ()
                    manifest.append(BlockSpec(
                        key=key, dtype=sub.dtype.str, shape=tuple(sub.shape),
                        offset=offset, nbytes=sub.nbytes, codec=block.codec,
                        part=part, meta=meta))
                    blocks.append(sub)
                    offset += sub.nbytes
        param_nbytes = offset
        total = param_nbytes + len(blob)

        hasher = hashlib.blake2b(digest_size=16)
        for block in blocks:
            hasher.update(block)
        hasher.update(blob)
        digest = hasher.hexdigest()

        self._shm = None
        inline: Optional[bytes] = None
        shm_name: Optional[str] = None
        if use_shared_memory and _shared_memory is not None:
            try:
                self._shm = _shared_memory.SharedMemory(create=True,
                                                        size=max(total, 1))
            except OSError:
                self._shm = None
        if self._shm is not None:
            buffer = self._shm.buf
            for spec, block in zip(manifest, blocks):
                view = np.frombuffer(buffer, dtype=spec.dtype,
                                     count=int(np.prod(spec.shape, dtype=np.int64)),
                                     offset=spec.offset)
                view[:] = block.ravel()
            buffer[param_nbytes:total] = blob
            shm_name = self._shm.name
        else:
            inline = b"".join(block.tobytes() for block in blocks) + blob
            _bump(inline_publishes=1)

        has_params = params is not None or encoded_params is not None
        self.handle = BroadcastHandle(
            shm_name=shm_name, manifest=tuple(manifest),
            has_params=has_params, blob_offset=param_nbytes,
            blob_nbytes=len(blob), total_nbytes=total, digest=digest,
            round_index=round_index, creator_pid=os.getpid(), inline=inline)
        self._closed = False
        _bump(publishes=1, param_bytes=param_nbytes, blob_bytes=len(blob),
              param_packs=1 if has_params else 0)

    def close(self) -> None:
        """Unlink the shared memory segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
            self._shm = None

    def __enter__(self) -> "Broadcast":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


# ---------------------------------------------------------------- workers
_worker_cache = threading.local()


def _attach_and_copy(handle: BroadcastHandle) -> bytes:
    """Read the whole broadcast segment into private worker memory."""
    if handle.inline is not None:
        return handle.inline
    if _shared_memory is None:  # pragma: no cover - fallback always inlines
        raise RuntimeError("shared memory is unavailable in this worker")
    try:
        shm = _shared_memory.SharedMemory(name=handle.shm_name)
    except FileNotFoundError:
        raise RuntimeError(
            f"broadcast segment {handle.shm_name!r} is gone — the server "
            "closed the Broadcast before every task materialized it") from None
    # Note on resource tracking (bpo-39959): attaching re-registers the
    # segment with the resource tracker, which in other topologies leads to
    # spurious leak warnings.  Here every worker — a thread trivially, a
    # spawned process via the tracker fd in its spawn preparation data —
    # shares the *server's* tracker, so the attach is a set-level no-op and
    # the server's ``unlink()`` performs the single deregistration.
    # Unregistering here would erase the server's registration instead.
    try:
        return bytes(shm.buf[:handle.total_nbytes])
    finally:
        shm.close()


def materialize(handle: BroadcastHandle) -> Tuple[Optional[Dict[str, np.ndarray]], Any]:
    """Reconstruct ``(params, payload)`` from a handle, caching per worker.

    The cache is keyed by ``(round_index, digest)`` — content-addressed, so
    a hit is always byte-equivalent to a fresh materialization.  Within one
    worker the cached objects are reused across tasks, which matches the
    serial reference semantics (one strategy/model instance serving clients
    sequentially).

    The returned parameter arrays are **read-only zero-copy views** into
    the worker's single private snapshot of the segment: no per-array copy
    is made, and any attempted in-place mutation during fan-out raises
    instead of silently corrupting the shared payload.  (The one snapshot
    copy is what makes the views safe: the server unlinks the segment when
    the round's fan-out completes and the worker cache evicts old rounds,
    neither of which may invalidate arrays still referenced by a task.)
    """
    cache: BoundedLRU = getattr(_worker_cache, "entries", None)
    if cache is None:
        cache = _worker_cache.entries = BoundedLRU(CACHE_LIMIT)
    key = handle.cache_key
    hit = cache.get(key)
    if hit is not None:
        _bump(materialize_hits=1)
        return hit

    raw = _attach_and_copy(handle)
    params: Optional[Dict[str, np.ndarray]] = None
    if handle.has_params:
        params = {}
        pending: Dict[str, List[Tuple[BlockSpec, np.ndarray]]] = {}
        for spec in handle.manifest:
            flat = np.frombuffer(raw, dtype=spec.dtype,
                                 count=int(np.prod(spec.shape, dtype=np.int64)),
                                 offset=spec.offset)
            # ``raw`` is immutable bytes, so the view (and any reshape of
            # it) is born non-writeable and pins the snapshot alive via its
            # base reference — zero-copy and mutation-proof
            if spec.codec == "raw" and spec.part == 0 and not spec.meta:
                params[spec.key] = flat.reshape(spec.shape)
            else:
                pending.setdefault(spec.key, []).append(
                    (spec, flat.reshape(spec.shape)))
        for key, parts in pending.items():
            parts.sort(key=lambda item: item[0].part)
            head = parts[0][0]
            logical_dtype, logical_shape, codec_meta = head.meta
            block = EncodedBlock(codec=head.codec, dtype=logical_dtype,
                                 shape=tuple(logical_shape),
                                 arrays=tuple(sub for _, sub in parts),
                                 meta=tuple(codec_meta))
            dense = decode_block(block)
            # decoded blocks are private allocations; freeze them so they
            # honour the same read-only contract as the zero-copy views
            dense.flags.writeable = False
            params[key] = dense
    payload = pickle.loads(
        raw[handle.blob_offset:handle.blob_offset + handle.blob_nbytes])
    entry = (params, payload)
    cache.put(key, entry)
    _bump(materializations=1)
    return entry
