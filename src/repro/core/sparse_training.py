"""FedLPS learnable sparse training (Algorithm 1, lines 17-27).

One client-side update round:

1. import the global parameters and the client's persisted importance
   indicator ``Q``;
2. in every local iteration, derive the importance-based pattern at the
   assigned sparse ratio (Eq. 4/5), train the masked model on a mini-batch
   (Eq. 10) and update ``Q`` by back-propagation (Eq. 11);
3. after the last iteration, store the personalized sparse model locally and
   upload only the masked residual ``(omega_global - omega_local) * m``
   (Eq. 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from ..data.dataset import Dataset
from ..nn import SGD, accuracy, softmax_cross_entropy
from ..nn.model import Sequential
from ..nn.params import ParamDict, copy_params, multiply, subtract
from ..sparsity.masks import UnitPattern, build_parameter_mask, gates_from_pattern
from ..federated.local import iterate_batches
from .importance import ImportanceIndicator
from .losses import add_gradients, combine_unit_gradients, proximal_gradient, proximal_loss


@dataclass
class SparseTrainingResult:
    """Everything the FedLPS client produces in one round."""

    personalized_params: ParamDict
    residual: ParamDict
    pattern: UnitPattern
    importance: ImportanceIndicator
    sparse_ratio: float
    train_accuracy: float
    train_loss: float
    examples_seen: int


def learnable_sparse_training(model: Sequential,
                              global_params: Mapping[str, np.ndarray],
                              importance: ImportanceIndicator,
                              dataset: Dataset, *, sparse_ratio: float,
                              iterations: int, batch_size: int,
                              learning_rate: float, momentum: float = 0.0,
                              clip_norm: Optional[float] = None,
                              prox_mu: float = 1.0,
                              importance_lambda: float = 1.0,
                              importance_learning_rate: Optional[float] = None,
                              refresh_pattern_each_iteration: bool = False,
                              rng: Optional[np.random.Generator] = None
                              ) -> SparseTrainingResult:
    """Run the FedLPS local update and return the personalized sparse model.

    Args:
        refresh_pattern_each_iteration: Algorithm 1 re-derives the mask from
            ``Q`` in every local iteration.  With the small backbones of this
            reproduction that per-iteration re-masking makes the top-k pattern
            oscillate between marginal units and wastes most of the round's
            training, so by default the pattern is derived once per round from
            the incoming ``Q`` and held fixed while ``Q`` itself keeps being
            learned for the next round (see DESIGN.md).  Set this flag to True
            for the paper's literal per-iteration behaviour.
    """
    if not 0.0 < sparse_ratio <= 1.0:
        raise ValueError(f"sparse_ratio must be in (0, 1], got {sparse_ratio}")
    rng = rng or np.random.default_rng(0)
    importance = importance.copy()
    q_lr = importance_learning_rate if importance_learning_rate is not None \
        else learning_rate

    params = copy_params(global_params)
    global_reference = copy_params(global_params)
    optimizer = SGD(learning_rate, momentum=momentum, clip_norm=clip_norm)

    losses = []
    accuracies = []
    examples = 0
    # (Eq. 4/5) importance-derived pattern and parameter mask
    pattern = importance.pattern(model, sparse_ratio)
    param_mask = build_parameter_mask(model, pattern)
    for batch_x, batch_y in iterate_batches(dataset, batch_size, iterations, rng=rng):
        if refresh_pattern_each_iteration:
            pattern = importance.pattern(model, sparse_ratio)
            param_mask = build_parameter_mask(model, pattern)

        model.set_parameters(params)
        model.set_unit_gates(gates_from_pattern(pattern))
        model.zero_grad()
        logits = model.forward(batch_x, train=True)
        task_loss, grad = softmax_cross_entropy(logits, batch_y)
        accuracies.append(accuracy(logits, batch_y))
        model.backward(grad)

        grads = model.get_gradients()
        gate_grads = _normalize_gate_gradients(model.gate_gradients())
        # (Eq. 7) proximal pull towards the global parameters
        prox_grads = proximal_gradient(params, global_reference, prox_mu)
        grads = add_gradients(grads, prox_grads)
        # (Eq. 10) only the retained sub-model's parameters are updated
        grads = {key: grads[key] * param_mask[key] for key in grads}
        _step_on_live_params(model, optimizer, grads)
        params = model.get_parameters()

        # (Eq. 11) importance indicator update: straight-through task gradient
        # through the unit gates plus the Eq. (8) regularizer gradient
        reg_grads = importance.regularization_gradient(model, importance_lambda)
        q_grads = combine_unit_gradients(gate_grads, reg_grads)
        importance.apply_gradient(q_grads, q_lr)

        losses.append(task_loss
                      + proximal_loss(params, global_reference, prox_mu)
                      + importance.regularization_loss(model, importance_lambda))
        examples += len(batch_y)
    model.set_unit_gates(None)

    # (Alg. 1 lines 23-25) personalized model and masked residual.  The mask
    # is the one the round actually trained with; the updated ``Q`` shapes the
    # next round's pattern.
    final_pattern = (importance.pattern(model, sparse_ratio)
                     if refresh_pattern_each_iteration else pattern)
    final_mask = build_parameter_mask(model, final_pattern)
    personalized = multiply(params, final_mask)
    residual = multiply(subtract(global_reference, params), final_mask)
    return SparseTrainingResult(
        personalized_params=personalized, residual=residual,
        pattern=final_pattern, importance=importance, sparse_ratio=sparse_ratio,
        train_accuracy=float(np.mean(accuracies)) if accuracies else 0.0,
        train_loss=float(np.mean(losses)) if losses else 0.0,
        examples_seen=examples)


def _normalize_gate_gradients(gate_grads: Mapping[str, np.ndarray]
                              ) -> dict[str, np.ndarray]:
    """Scale each layer's gate gradient to unit maximum magnitude.

    The raw straight-through gradient sums over batch and spatial positions,
    so convolution layers produce values orders of magnitude larger than
    fully-connected layers.  Only the relative ordering within a layer matters
    for the quantile threshold of Eq. (4), so each layer is normalized to make
    the importance learning rate meaningful across architectures.
    """
    normalized = {}
    for name, grad in gate_grads.items():
        grad = np.asarray(grad, dtype=np.float64)
        peak = float(np.max(np.abs(grad)))
        normalized[name] = grad / peak if peak > 0 else grad
    return normalized


def _step_on_live_params(model: Sequential, optimizer: SGD,
                         grads: ParamDict) -> None:
    live = {}
    for layer in model.layers:
        for key in layer.params:
            live[f"{layer.name}.{key}"] = layer.params[key]
    optimizer.step(live, grads)
