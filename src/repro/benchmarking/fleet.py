"""Fleet-scale benchmark: construction cost vs fleet size (``repro bench``).

``repro bench --fleet-scale`` measures what the virtual client fleet was
built for: the cost of standing up a federation must scale with the
*cohort* a round dispatches, not with the number of clients that exist.
For each fleet size on a ladder the benchmark times the full construction
path — dataset, device fleet, server core, strategy setup, first selection
and the materialization of the first cohort — and records the peak traced
allocation.  At the ladder's top (100k clients at scale 1.0) the gate pins
the contract: under a second and under 100 MB to first dispatch, where the
eager path would be O(GB).  A final smoke cell (1M clients at scale 1.0)
runs selection plus two full training rounds.

Everything lands in ``BENCH_fleet.json``, schema-compatible with the
``BENCH_fanout.json`` family (``bench_scale``, ``cpu_count``, per-cell
``seconds``), so future PRs have a trajectory to move.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
import tracemalloc
from pathlib import Path
from typing import Dict, Iterable, Optional

from ..baselines import build_strategy
from ..experiments import preset_for, run_method, scaled
from ..federated import FederatedTrainer

#: the fleet-size ladder at scale 1.0
LADDER = (1_000, 10_000, 100_000)

#: the selection-plus-two-rounds smoke size at scale 1.0
SMOKE_CLIENTS = 1_000_000

#: gate thresholds for the ladder's largest cell (the 100k contract)
GATE_SECONDS = 1.0
GATE_MEGABYTES = 100.0

#: largest fleet the eager-comparison cell is allowed to build
EAGER_LIMIT = 2_000


def fleet_preset(num_clients: int, *, num_rounds: int = 2,
                 clients_per_round: int = 32, eval_clients: int = 32,
                 lazy: bool = True):
    """The benchmark federation at ``num_clients`` (tiny per-client data)."""
    return scaled(preset_for("mnist"),
                  num_clients=num_clients,
                  examples_per_client=16,
                  num_rounds=num_rounds,
                  clients_per_round=min(clients_per_round, num_clients),
                  local_iterations=1,
                  eval_clients=min(eval_clients, num_clients),
                  lazy_fleet=lazy,
                  seed=7)


def _rss_mb() -> Optional[float]:
    try:
        import resource
        usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS
        return usage / 1024.0 if sys.platform != "darwin" else usage / 2**20
    except Exception:  # pragma: no cover - platform without resource
        return None


def measure_construction(num_clients: int, *, lazy: bool = True
                         ) -> Dict[str, object]:
    """Time/memory from nothing to the first dispatched cohort.

    Covers dataset + device fleet + server core construction, strategy
    setup, round-0 selection and materialization of every selected client —
    i.e. everything a real run pays before the first local update starts.
    """
    from ..experiments.presets import build_experiment

    preset = fleet_preset(num_clients, lazy=lazy)
    tracemalloc.start()
    start = time.perf_counter()
    dataset, model_builder, config, fleet = build_experiment(preset)
    trainer = FederatedTrainer(build_strategy("fedavg"), dataset,
                               model_builder, config=config, fleet=fleet)
    core = trainer.core
    core.strategy.setup(core.context)
    selected = core.select_clients(0)
    cohort = [core.clients[cid] for cid in selected]
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    shard_map = getattr(dataset, "clients", None)
    materializations = getattr(shard_map, "materializations", num_clients)
    shard_bytes = sum(part.x.nbytes + part.y.nbytes
                      for client in cohort
                      for part in (client.data.train, client.data.test))
    per_client = shard_bytes / max(len(cohort), 1)
    return {
        "num_clients": num_clients,
        "lazy": lazy,
        "seconds_to_first_dispatch": seconds,
        "traced_peak_mb": peak / 2**20,
        "rss_max_mb": _rss_mb(),
        "cohort_size": len(selected),
        "shard_materializations": materializations,
        "state_entries": len(core.clients.state_store),
        # what eagerly materializing every shard would allocate, projected
        # from the measured per-client shard footprint
        "projected_eager_shard_mb": per_client * num_clients / 2**20,
    }


def measure_smoke(num_clients: int) -> Dict[str, object]:
    """Selection + two full training rounds on a virtual fleet."""
    preset = fleet_preset(num_clients, num_rounds=2, clients_per_round=16,
                          eval_clients=16)
    start = time.perf_counter()
    history = run_method("fedavg", preset)
    seconds = time.perf_counter() - start
    return {
        "num_clients": num_clients,
        "rounds": preset.num_rounds,
        "seconds": seconds,
        "final_accuracy": history.final_accuracy(),
        "rounds_completed": len(history.records),
    }


def _gate(cells: Dict[str, Dict[str, object]],
          top_size: int) -> Dict[str, object]:
    """Pass/fail: the ladder's top cell meets the O(cohort) contract."""
    top = cells.get(str(top_size))
    if top is None:
        return {"pass": False, "reason": f"missing top ladder cell {top_size}"}
    seconds = float(top["seconds_to_first_dispatch"])
    peak_mb = float(top["traced_peak_mb"])
    # memory/time must track the cohort, not the fleet: untouched clients
    # are never materialized
    cohort_bound = int(top["cohort_size"])
    sparse = (int(top["shard_materializations"]) <= cohort_bound
              and int(top["state_entries"]) <= cohort_bound)
    verdict = (seconds <= GATE_SECONDS and peak_mb <= GATE_MEGABYTES
               and sparse)
    return {
        "pass": bool(verdict),
        "top_size": top_size,
        "seconds": seconds,
        "seconds_budget": GATE_SECONDS,
        "traced_peak_mb": peak_mb,
        "megabytes_budget": GATE_MEGABYTES,
        "o_cohort_materialization": sparse,
    }


def run_fleet_bench(scale: float = 1.0,
                    ladder: Optional[Iterable[int]] = None,
                    smoke_clients: Optional[int] = None,
                    output: Optional[str] = None) -> Dict[str, object]:
    """Run the fleet-scale benchmark and return (optionally write) the report.

    ``scale`` multiplies the fleet-size ladder (1k/10k/100k at 1.0) and the
    smoke size (1M at 1.0); CI shrinks it the same way ``repro bench
    --scale`` shrinks the fan-out workload.  The smallest ladder cell is
    additionally built eagerly (when small enough) so every report carries
    a measured lazy-vs-eager comparison next to the projected one.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    # dedup preserving order: tiny scales can collapse neighbouring rungs
    # onto the same size, and silently overwriting a cell would make the
    # report look complete when a rung was dropped
    sizes = list(dict.fromkeys(
        max(8, int(round(step * scale)))
        for step in (ladder if ladder is not None else LADDER)))
    smoke = (smoke_clients if smoke_clients is not None
             else max(16, int(round(SMOKE_CLIENTS * scale))))
    cells: Dict[str, Dict[str, object]] = {}
    for size in sizes:
        cells[str(size)] = measure_construction(size, lazy=True)
    eager_cell = None
    if sizes and sizes[0] <= EAGER_LIMIT:
        eager_cell = measure_construction(sizes[0], lazy=False)
    report: Dict[str, object] = {
        "bench_scale": scale,
        "python": platform.python_version(),
        "platform": sys.platform,
        "cpu_count": os.cpu_count(),
        "ladder": cells,
        "eager_reference": eager_cell,
        "smoke": measure_smoke(smoke),
        "gate": _gate(cells, sizes[-1]),
    }
    if output:
        Path(output).write_text(json.dumps(report, indent=2, sort_keys=True))
    return report


def format_fleet_report(report: Dict[str, object]) -> str:
    """Render a fleet report as the aligned text table the CLI prints."""
    lines = [f"# repro bench --fleet-scale {report['bench_scale']} — "
             f"cpu_count {report['cpu_count']}"]
    header = (f"{'fleet':>10s} | {'mode':>5s} | {'dispatch_s':>10s} | "
              f"{'peak_mb':>8s} | {'shards':>6s} | {'eager_proj_mb':>13s}")
    lines += [header, "-" * len(header)]

    def row(cell):
        lines.append(
            f"{cell['num_clients']:>10d} | "
            f"{'lazy' if cell['lazy'] else 'eager':>5s} | "
            f"{cell['seconds_to_first_dispatch']:>10.4f} | "
            f"{cell['traced_peak_mb']:>8.2f} | "
            f"{cell['shard_materializations']:>6d} | "
            f"{cell['projected_eager_shard_mb']:>13.1f}")

    for cell in report["ladder"].values():
        row(cell)
    if report.get("eager_reference"):
        row(report["eager_reference"])
    smoke = report["smoke"]
    lines.append(
        f"smoke: {smoke['num_clients']} clients, {smoke['rounds_completed']}/"
        f"{smoke['rounds']} rounds in {smoke['seconds']:.2f}s")
    gate = report["gate"]
    if "seconds" in gate:
        lines.append(
            f"gate: {gate['top_size']} clients -> "
            f"{gate['seconds']:.3f}s (budget {gate['seconds_budget']}s), "
            f"{gate['traced_peak_mb']:.1f}MB (budget "
            f"{gate['megabytes_budget']}MB), O(cohort)="
            f"{gate['o_cohort_materialization']} -> "
            f"{'PASS' if gate['pass'] else 'FAIL'}")
    else:
        lines.append(f"gate: FAIL ({gate.get('reason')})")
    return "\n".join(lines)
