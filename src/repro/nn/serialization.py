"""Parameter snapshot (de)serialization.

Snapshots are stored as ``.npz`` archives; keys are the ``"layer.param"``
names used throughout the federated stack.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Union

import numpy as np

from .params import ParamDict


def save_parameters(path: Union[str, Path], params: Mapping[str, np.ndarray]) -> Path:
    """Write a parameter snapshot to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **{key: np.asarray(value) for key, value in params.items()})
    return path


def load_parameters(path: Union[str, Path]) -> ParamDict:
    """Load a parameter snapshot previously written by :func:`save_parameters`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no parameter snapshot at {path}")
    with np.load(path) as archive:
        return {key: np.array(archive[key]) for key in archive.files}


def parameter_bytes(params: Mapping[str, np.ndarray],
                    bytes_per_value: int = 4) -> int:
    """Size in bytes of a snapshot when transmitted as ``float32`` values."""
    return int(sum(value.size for value in params.values()) * bytes_per_value)


def nonzero_parameter_bytes(params: Mapping[str, np.ndarray],
                            bytes_per_value: int = 4) -> int:
    """Transmitted size when only non-zero values are sent (sparse upload)."""
    return int(sum(np.count_nonzero(value) for value in params.values())
               * bytes_per_value)
