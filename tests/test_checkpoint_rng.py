"""Property test: PCG64 streams serialize/restore mid-run without drift.

Checkpoint resume is only bit-exact if every random stream the simulator
owns continues from *exactly* where it stopped.  For each stream family —
the shared selection/strategy generator, the per-(round, client) strategy
derivation, the tuple-seeded scenario draws and the device sampler's
sequential PCG64 — the property is: draw ``j`` values, snapshot the
bit-generator state with :func:`repro.checkpoint.rng_state`, keep drawing
from the live generator, and the generator rebuilt by
:func:`repro.checkpoint.restore_rng` must reproduce the continuation
value-for-value (``uniform``, ``integers``, ``choice`` and
``permutation`` draws alike).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import CheckpointError, restore_rng, rng_state

#: one constructor per stream family the simulator derives
STREAMS = {
    # ServerCore.context.rng — the live selection/strategy stream
    "selection": lambda seed, round_index, cid:
        np.random.default_rng(seed),
    # Strategy._round_rng's per-(round, client) derivation
    "strategy": lambda seed, round_index, cid:
        np.random.default_rng(seed * 1_000_003 + round_index * 1009 + cid),
    # ScenarioEngine._rng's tuple-seeded per-decision draws
    "scenario": lambda seed, round_index, cid:
        np.random.default_rng((seed, round_index, cid, 0xE7)),
    # DeviceProfile.available_capability's fluctuation stream
    "device": lambda seed, round_index, cid:
        np.random.default_rng((seed + 1) * 1_000_003 + cid * 7919
                              + round_index),
}


def draw_sequence(generator: np.random.Generator, count: int) -> list:
    """A mixed draw schedule touching every consumption path resume uses."""
    values = []
    for position in range(count):
        kind = position % 4
        if kind == 0:
            values.append(float(generator.uniform(0.0, 1.0)))
        elif kind == 1:
            values.append(int(generator.integers(0, 1 << 20)))
        elif kind == 2:
            values.append(int(generator.choice(17)))
        else:
            values.append(tuple(int(v) for v in generator.permutation(5)))
    return values


@pytest.mark.parametrize("stream", sorted(STREAMS))
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1),
       round_index=st.integers(min_value=0, max_value=500),
       client_id=st.integers(min_value=0, max_value=100_000),
       before=st.integers(min_value=0, max_value=40),
       after=st.integers(min_value=1, max_value=40))
def test_stream_resumes_mid_sequence(stream, seed, round_index, client_id,
                                     before, after):
    live = STREAMS[stream](seed, round_index, client_id)
    draw_sequence(live, before)
    state = rng_state(live)
    expected = draw_sequence(live, after)

    restored = restore_rng(state)
    assert draw_sequence(restored, after) == expected


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1),
       before=st.integers(min_value=0, max_value=40))
def test_snapshot_is_immutable(seed, before):
    """Later draws on the live generator must not corrupt the snapshot."""
    live = np.random.default_rng(seed)
    draw_sequence(live, before)
    state = rng_state(live)
    expected = draw_sequence(live, 8)
    draw_sequence(live, 32)  # keep mutating after the snapshot
    assert draw_sequence(restore_rng(state), 8) == expected
    # restoring twice from the same snapshot yields the same stream twice
    assert draw_sequence(restore_rng(state), 8) == expected


def test_state_roundtrip_is_exact():
    generator = np.random.default_rng(1234)
    generator.integers(0, 10, size=7)
    state = rng_state(generator)
    assert restore_rng(state).bit_generator.state == state


def test_unknown_bit_generator_is_refused():
    with pytest.raises(CheckpointError, match="unknown bit generator"):
        restore_rng({"bit_generator": "NotARealBitGenerator"})


def test_non_default_bit_generator_roundtrips():
    """restore_rng keys on the recorded class, not an assumed PCG64."""
    generator = np.random.Generator(np.random.Philox(99))
    generator.uniform(size=3)
    state = rng_state(generator)
    restored = restore_rng(state)
    assert isinstance(restored.bit_generator, np.random.Philox)
    assert float(restored.uniform()) == float(generator.uniform())
