"""Indexed-slice reduction: bit-identical to dense, and never densifying.

The aggregation kernels accept codec-decoded updates whose sparse entries
are :class:`~repro.parallel.codec.IndexedSlices`.  Two contracts:

* **bit-identity** — reducing the indexed form produces byte-for-byte the
  result of reducing the dense arrays, including the ``-0.0``-at-off-mask
  corners FedLPS residuals are full of (proofs live on the kernels in
  ``repro.nn.params``);
* **never densify** — the reducers make no full-shape allocation per
  client: ``IndexedSlices.densify`` (and the lazy per-key dense cache) is
  never invoked on the reduction path.
"""

import numpy as np
import pytest

from repro.federated.aggregation import aggregate_residuals, masked_average
from repro.parallel.codec import DecodedParams, IndexedSlices, resolve_codec


def _residual_like(rng, shape, density):
    """A FedLPS-style upload: explicit values on-mask, ``-0.0`` off-mask."""
    mask = rng.random(shape) < density
    return np.where(mask, rng.normal(size=shape), -0.0)


def _cohort(rng, num_clients=4, density=0.3):
    global_params = {"w": rng.normal(size=(6, 8)), "b": rng.normal(size=(8,))}
    dense_updates = [{"w": _residual_like(rng, (6, 8), density),
                      "b": _residual_like(rng, (8,), density)}
                     for _ in range(num_clients)]
    codec = resolve_codec("sparse")
    indexed_updates = [codec.decode(codec.encode(update))
                       for update in dense_updates]
    weights = [float(w) for w in rng.integers(1, 30, size=num_clients)]
    return global_params, dense_updates, indexed_updates, weights


def _assert_bit_identical(left, right):
    assert set(left) == set(right)
    for key in left:
        assert left[key].tobytes() == right[key].tobytes(), key


class TestAggregateResidualsIndexed:
    def test_bit_identical_to_dense(self):
        rng = np.random.default_rng(0)
        g, dense, indexed, weights = _cohort(rng)
        assert any(isinstance(u, DecodedParams) for u in indexed)
        _assert_bit_identical(aggregate_residuals(g, dense, weights),
                              aggregate_residuals(g, indexed, weights))

    def test_bit_identical_with_negzero_global(self):
        # the -0.0 correction path: g - (-0.0) is +0.0 when g is -0.0,
        # which a naive bulk g*factor would get wrong
        rng = np.random.default_rng(1)
        g, dense, indexed, weights = _cohort(rng)
        g["w"] = np.where(rng.random((6, 8)) < 0.5, -0.0, g["w"])
        _assert_bit_identical(aggregate_residuals(g, dense, weights),
                              aggregate_residuals(g, indexed, weights))

    def test_mixed_dense_and_indexed_batch(self):
        rng = np.random.default_rng(2)
        g, dense, indexed, weights = _cohort(rng)
        mixed = [dense[0], indexed[1], dense[2], indexed[3]]
        _assert_bit_identical(aggregate_residuals(g, dense, weights),
                              aggregate_residuals(g, mixed, weights))

    def test_validation_matches_dense_path(self):
        rng = np.random.default_rng(3)
        g, _, indexed, weights = _cohort(rng)
        with pytest.raises(ValueError, match="same length"):
            aggregate_residuals(g, indexed, weights[:-1])
        with pytest.raises(ValueError, match="positive"):
            aggregate_residuals(g, indexed, [0.0] * len(indexed))
        with pytest.raises(KeyError, match="differ in keys"):
            aggregate_residuals({"w": g["w"]}, indexed, weights)

    def test_empty_cohort_copies_global(self):
        rng = np.random.default_rng(4)
        g, _, _, _ = _cohort(rng)
        _assert_bit_identical(aggregate_residuals(g, [], []), g)


class TestMaskedAverageIndexed:
    def _masks(self, rng, num_clients):
        return [{"w": (rng.random((6, 8)) < 0.5).astype(np.float64),
                 "b": (rng.random((8,)) < 0.5).astype(np.float64)}
                for _ in range(num_clients)]

    def test_bit_identical_to_dense(self):
        rng = np.random.default_rng(5)
        g, dense, indexed, weights = _cohort(rng)
        masks = self._masks(rng, len(dense))
        _assert_bit_identical(masked_average(g, dense, masks, weights),
                              masked_average(g, indexed, masks, weights))

    def test_bit_identical_unweighted(self):
        rng = np.random.default_rng(6)
        g, dense, indexed, _ = _cohort(rng)
        masks = self._masks(rng, len(dense))
        _assert_bit_identical(masked_average(g, dense, masks),
                              masked_average(g, indexed, masks))

    def test_negative_values_through_zero_masks(self):
        # dense contributions 0.0 * (negative value) = -0.0 must stay
        # bitwise no-ops on the numerator when the indexed path skips them
        rng = np.random.default_rng(7)
        g = {"w": rng.normal(size=(4, 4))}
        dense = [{"w": np.where(rng.random((4, 4)) < 0.5,
                                -np.abs(rng.normal(size=(4, 4))), -0.0)}
                 for _ in range(3)]
        codec = resolve_codec("sparse")
        indexed = [codec.decode(codec.encode(u)) for u in dense]
        masks = [{"w": (rng.random((4, 4)) < 0.5).astype(np.float64)}
                 for _ in range(3)]
        _assert_bit_identical(masked_average(g, dense, masks, [1.0, 2.0, 3.0]),
                              masked_average(g, indexed, masks,
                                             [1.0, 2.0, 3.0]))


class TestNeverDensify:
    @pytest.fixture()
    def densify_forbidden(self, monkeypatch):
        def _explode(self):
            raise AssertionError("reducer densified an indexed update")

        monkeypatch.setattr(IndexedSlices, "densify", _explode)
        monkeypatch.setattr(
            DecodedParams, "__getitem__",
            lambda self, key: (_ for _ in ()).throw(
                AssertionError("reducer materialized a dense entry")))

    def test_aggregate_residuals_never_densifies(self, densify_forbidden):
        rng = np.random.default_rng(8)
        g, _, indexed, weights = _cohort(rng)
        result = aggregate_residuals(g, indexed, weights)
        assert set(result) == set(g)

    def test_masked_average_never_densifies(self, densify_forbidden):
        rng = np.random.default_rng(9)
        g, dense, indexed, weights = _cohort(rng)
        masks = [{key: np.ones_like(value) for key, value in g.items()}
                 for _ in indexed]
        result = masked_average(g, indexed, masks, weights)
        assert set(result) == set(g)

    def test_reduction_allocations_are_o_keys(self):
        # allocations must not scale with the cohort: reduce 2 vs 64 clients
        # and require identical peak traced allocation magnitude per client
        import tracemalloc

        rng = np.random.default_rng(10)
        g = {"w": rng.normal(size=(64, 64))}
        codec = resolve_codec("sparse")

        def reduce_cohort(count):
            updates = [codec.decode(codec.encode(
                {"w": _residual_like(rng, (64, 64), 0.1)}))
                for _ in range(count)]
            weights = [1.0] * count
            tracemalloc.start()
            aggregate_residuals(g, updates, weights)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return peak

        small, large = reduce_cohort(2), reduce_cohort(64)
        # O(keys) scratch: the 32x cohort may not cost anywhere near 32x
        # the peak (allow generous slack for the index arrays themselves)
        assert large < small * 4
