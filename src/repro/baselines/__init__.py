"""Baseline federated-learning strategies compared against FedLPS."""

from . import ablations
from .conventional import REFL, FedAvg, FedProx, Oort
from .personalized import Ditto, FedPer, FedRep, PerFedAvg, body_keys, head_keys
from .personalized_sparse import (FedP3, FedSpa, Hermes, LotteryFL,
                                  PersonalSparseStrategy)
from .registry import (STRATEGY_REGISTRY, TABLE1_METHODS, available_strategies,
                       build_strategy)
from .sparse_shared import (ComplementSparsification, DepthFL, FedDropout,
                            FedMP, FedRolex, FjORD, HeteroFL, PruneFL,
                            SharedSparseStrategy)

__all__ = [
    "FedAvg",
    "FedProx",
    "Oort",
    "REFL",
    "PruneFL",
    "ComplementSparsification",
    "FedDropout",
    "FjORD",
    "HeteroFL",
    "FedRolex",
    "FedMP",
    "DepthFL",
    "Ditto",
    "FedPer",
    "FedRep",
    "PerFedAvg",
    "LotteryFL",
    "Hermes",
    "FedSpa",
    "FedP3",
    "SharedSparseStrategy",
    "PersonalSparseStrategy",
    "ablations",
    "build_strategy",
    "available_strategies",
    "STRATEGY_REGISTRY",
    "TABLE1_METHODS",
    "head_keys",
    "body_keys",
]
