"""Gradient-descent optimizers operating on parameter dictionaries."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

ParamDict = Dict[str, np.ndarray]


def global_grad_norm(grads: ParamDict) -> float:
    """L2 norm of all gradients viewed as one flat vector."""
    total = 0.0
    for grad in grads.values():
        total += float(np.sum(grad ** 2))
    return float(np.sqrt(total))


def clip_gradients(grads: ParamDict, max_norm: float) -> ParamDict:
    """Scale gradients so that their global norm does not exceed ``max_norm``."""
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    norm = global_grad_norm(grads)
    if norm <= max_norm or norm == 0.0:
        return grads
    scale = max_norm / norm
    return {key: grad * scale for key, grad in grads.items()}


def cohort_grad_norms(grads: ParamDict) -> np.ndarray:
    """Per-client L2 norms of a stacked ``(C, ...)`` gradient dictionary.

    Each norm reproduces :func:`global_grad_norm` on that client's slice
    bit-for-bit: the accumulation runs over keys in dictionary order as
    Python floats, and each per-key sum reduces the client's contiguous
    slice with the same tree as the sequential full-array ``np.sum``.
    """
    first = next(iter(grads.values()))
    cohort = first.shape[0]
    totals = [0.0] * cohort
    for grad in grads.values():
        squared = (grad ** 2).reshape(cohort, -1)
        for index in range(cohort):
            totals[index] += float(np.sum(squared[index]))
    return np.sqrt(np.asarray(totals))


def clip_gradients_cohort(grads: ParamDict, max_norm: float) -> ParamDict:
    """Per-client global-norm clipping on stacked ``(C, ...)`` gradients.

    Unclipped clients keep an exact scale of ``1.0`` — ``x * 1.0`` is a
    bitwise identity for every float (including ``-0.0``/inf/nan) — and the
    dictionary is returned unchanged when no client clips, matching
    :func:`clip_gradients` exactly per slice.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    norms = cohort_grad_norms(grads)
    scales: Optional[np.ndarray] = None
    for index, norm in enumerate(norms):
        norm = float(norm)
        if norm <= max_norm or norm == 0.0:
            continue
        if scales is None:
            scales = np.ones(len(norms), dtype=np.float64)
        scales[index] = max_norm / norm
    if scales is None:
        return grads
    return {key: grad * scales.reshape((len(norms),) + (1,) * (grad.ndim - 1))
            for key, grad in grads.items()}


class SGD:
    """Stochastic gradient descent with optional momentum, weight decay and
    global-norm gradient clipping.

    The optimizer is stateless with respect to the model: it works on
    ``{name: array}`` dictionaries so that the federated stack can apply it to
    any parameter snapshot (global model, personalized model, masked model).
    """

    def __init__(self, lr: float, *, momentum: float = 0.0,
                 weight_decay: float = 0.0,
                 clip_norm: Optional[float] = None) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.clip_norm = clip_norm
        self._velocity: ParamDict = {}

    def step(self, params: ParamDict, grads: ParamDict) -> None:
        """Update ``params`` in place from ``grads``."""
        if self.clip_norm is not None:
            grads = clip_gradients(grads, self.clip_norm)
        for key, param in params.items():
            grad = grads.get(key)
            if grad is None:
                continue
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * param
            if self.momentum > 0.0:
                velocity = self._velocity.get(key)
                if velocity is None:
                    velocity = np.zeros_like(param)
                velocity = self.momentum * velocity + grad
                self._velocity[key] = velocity
                update = velocity
            else:
                update = grad
            param -= self.lr * update

    def reset_state(self) -> None:
        """Drop momentum buffers (used when a fresh local round starts)."""
        self._velocity = {}


class BatchedSGD:
    """SGD over stacked ``(C, ...)`` cohort parameters.

    Mirrors :class:`SGD` exactly per client slice: clipping is per-client
    (:func:`clip_gradients_cohort`), momentum buffers are stacked, and the
    update order (clip -> weight decay -> momentum -> ``param -= lr *
    update``) is element-wise identical to the sequential optimizer.  The
    learning rate may be a scalar (shared) or a ``(C,)`` vector broadcast
    along the client axis.
    """

    def __init__(self, lr, *, momentum: float = 0.0,
                 weight_decay: float = 0.0,
                 clip_norm: Optional[float] = None) -> None:
        if isinstance(lr, np.ndarray):
            lr = np.asarray(lr, dtype=np.float64)
            if lr.ndim != 1 or np.any(lr <= 0):
                raise ValueError("per-client learning rates must be a "
                                 "positive 1-D vector")
        elif lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.clip_norm = clip_norm
        self._velocity: ParamDict = {}

    def _scaled(self, update: np.ndarray) -> np.ndarray:
        if isinstance(self.lr, np.ndarray):
            return self.lr.reshape(
                (update.shape[0],) + (1,) * (update.ndim - 1)) * update
        return self.lr * update

    def step(self, params: ParamDict, grads: ParamDict) -> None:
        """Update stacked ``params`` in place from stacked ``grads``."""
        if self.clip_norm is not None:
            grads = clip_gradients_cohort(grads, self.clip_norm)
        for key, param in params.items():
            grad = grads.get(key)
            if grad is None:
                continue
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * param
            if self.momentum > 0.0:
                velocity = self._velocity.get(key)
                if velocity is None:
                    velocity = np.zeros_like(param)
                velocity = self.momentum * velocity + grad
                self._velocity[key] = velocity
                update = velocity
            else:
                update = grad
            param -= self._scaled(update)

    def reset_state(self) -> None:
        """Drop momentum buffers (used when a fresh local round starts)."""
        self._velocity = {}
