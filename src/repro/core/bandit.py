"""P-UCBV: Prompt Upper Confidence Bound Variance (Algorithm 2).

The server treats the choice of each client's sparse ratio as a continuous
multi-armed-bandit problem over ``[ratio_min, ratio_max)``.  The arm space is
partitioned adaptively (decision-tree style splits at previously played
ratios), partitions whose ratios sharply hurt accuracy are promptly
eliminated, and the next ratio is sampled from the partition with the best
UCB-V score computed from reward means and variances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .utility import utility_gain


@dataclass
class RatioPartition:
    """One half-open interval ``[low, high)`` of candidate sparse ratios."""

    low: float
    high: float
    rewards: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise ValueError(f"empty partition [{self.low}, {self.high})")

    def contains(self, ratio: float) -> bool:
        return self.low <= ratio < self.high

    @property
    def width(self) -> float:
        return self.high - self.low

    @property
    def pulls(self) -> int:
        return len(self.rewards)

    @property
    def mean_reward(self) -> float:
        return float(np.mean(self.rewards)) if self.rewards else 0.0

    @property
    def reward_variance(self) -> float:
        return float(np.var(self.rewards)) if self.rewards else 0.0

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))


class PUCBVAgent:
    """The per-client P-UCBV decision agent run on the server.

    Args:
        total_rounds: ``R``, the planned number of communication rounds.
        num_clients: ``K``.
        selection_fraction: ``epsilon`` in Algorithm 2's ``xi = R / (K * eps)``.
        num_initial_partitions: ``I_0``.
        accuracy_threshold: ``Delta`` (in accuracy percentage points); a round
            whose accuracy change falls below it triggers arm elimination.
        rho: exploration constant of the UCB-V bonus.
        ratio_min / ratio_max: bounds of the feasible sparse-ratio space.
        min_partition_width: splits that would create narrower partitions are
            skipped to keep the tree finite.
    """

    def __init__(self, *, total_rounds: int, num_clients: int,
                 selection_fraction: float, num_initial_partitions: int = 4,
                 accuracy_threshold: float = 0.0, rho: float = 1.0,
                 ratio_min: float = 0.05, ratio_max: float = 1.0,
                 min_partition_width: float = 0.02, seed: int = 0) -> None:
        if total_rounds <= 0 or num_clients <= 0:
            raise ValueError("total_rounds and num_clients must be positive")
        if not 0.0 < selection_fraction <= 1.0:
            raise ValueError("selection_fraction must be in (0, 1]")
        if num_initial_partitions <= 0:
            raise ValueError("num_initial_partitions must be positive")
        if not 0.0 < ratio_min < ratio_max <= 1.0:
            raise ValueError("need 0 < ratio_min < ratio_max <= 1")
        self.accuracy_threshold = accuracy_threshold
        self.rho = rho
        self.ratio_min = ratio_min
        self.ratio_max = ratio_max
        self.min_partition_width = min_partition_width
        self._rng = np.random.default_rng(seed)
        self.xi = total_rounds / (num_clients * selection_fraction)
        self.epsilon = 1.0
        edges = np.linspace(ratio_min, ratio_max, num_initial_partitions + 1)
        self.partitions: List[RatioPartition] = [
            RatioPartition(float(lo), float(hi))
            for lo, hi in zip(edges[:-1], edges[1:])
        ]
        self.psi = self.xi / num_initial_partitions ** 2
        self._eliminated: int = 0

    # ----------------------------------------------------------------- API
    def initial_ratio(self) -> float:
        """Sample the very first sparse ratio from a random partition."""
        partition = self.partitions[self._rng.integers(len(self.partitions))]
        return partition.sample(self._rng)

    def observe_and_select(self, ratio: float, local_cost_seconds: float,
                           accuracy_percent: float,
                           previous_accuracy_percent: float) -> float:
        """Process one round's feedback and return the next sparse ratio.

        Implements Algorithm 2: split the partition that produced ``ratio``
        at that ratio, possibly eliminate its lower half when accuracy
        degraded, record the reward (Eq. 15) and pick the next partition by
        UCB-V score.
        """
        if local_cost_seconds <= 0:
            raise ValueError("local_cost_seconds must be positive")
        ratio = float(np.clip(ratio, self.ratio_min,
                              np.nextafter(self.ratio_max, 0.0)))
        index = self._find_partition(ratio)
        lower, upper = self._split(index, ratio)

        accuracy_change = accuracy_percent - previous_accuracy_percent
        if lower is not None and accuracy_change < self.accuracy_threshold \
                and len(self.partitions) > 1:
            self.partitions.remove(lower)
            self._eliminated += 1
            lower = None

        self.epsilon /= 2.0
        self.psi = self.xi / max(len(self.partitions), 1) ** 2

        reward = utility_gain(accuracy_percent, previous_accuracy_percent) \
            / local_cost_seconds
        if lower is not None:
            lower.rewards.append(reward)
        upper.rewards.append(reward)

        best = max(self.partitions, key=self._ucbv_value)
        return best.sample(self._rng)

    # ------------------------------------------------------------ internals
    def _find_partition(self, ratio: float) -> int:
        for index, partition in enumerate(self.partitions):
            if partition.contains(ratio):
                return index
        # ratio fell outside every partition (e.g. after eliminations): use
        # the nearest partition by midpoint distance.
        midpoints = [0.5 * (p.low + p.high) for p in self.partitions]
        return int(np.argmin([abs(ratio - mid) for mid in midpoints]))

    def _split(self, index: int, ratio: float
               ) -> tuple[Optional[RatioPartition], RatioPartition]:
        """Split partition ``index`` at ``ratio`` into (lower, upper) halves.

        Returns ``(lower, upper)`` where ``lower`` is ``None`` when the split
        would create a sliver narrower than ``min_partition_width`` (the
        original partition then plays the role of the upper half).
        """
        partition = self.partitions[index]
        if (ratio - partition.low < self.min_partition_width
                or partition.high - ratio < self.min_partition_width):
            return None, partition
        lower = RatioPartition(partition.low, ratio, rewards=list(partition.rewards))
        upper = RatioPartition(ratio, partition.high, rewards=list(partition.rewards))
        self.partitions[index:index + 1] = [lower, upper]
        return lower, upper

    def _ucbv_value(self, partition: RatioPartition) -> float:
        """UCB-V score (Eq. 17); unexplored partitions are infinitely attractive."""
        if partition.pulls == 0:
            return float("inf")
        log_term = np.log(max(self.xi * self.psi * self.epsilon, 1e-12))
        radicand = max(self.rho * (partition.reward_variance + 2.0) * log_term, 0.0)
        bonus = float(np.sqrt(radicand / (4.0 * (partition.pulls + 1))))
        return partition.mean_reward + bonus

    # ------------------------------------------------------------ inspection
    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    @property
    def num_eliminated(self) -> int:
        return self._eliminated

    def partition_bounds(self) -> List[tuple[float, float]]:
        return [(p.low, p.high) for p in self.partitions]
