"""Experiment presets: per-dataset configuration of the paper's evaluation.

The paper runs 100 communication rounds with 50-100 clients and full-size
backbones.  The presets below keep the same *structure* (five datasets, five
capability tiers, pathological non-IID partitions, SGD with dataset-specific
learning rates) at a scale where every experiment finishes on a CPU in
seconds to minutes.  Every field can be overridden through
:func:`scaled`, which the benchmark harness uses to shrink runs further for
CI and to enlarge them for paper-scale replication.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional

from ..data import FederatedDataset, build_federated_dataset
from ..federated import AGGREGATIONS, FederatedConfig, FleetConfig
from ..models import build_model_for_dataset
from ..nn.model import Sequential
from ..parallel.codec import available_codecs
from ..parallel.faults import available_fault_plans, build_fault_plan
from ..scenarios import available_scenarios, build_scenario
from ..systems import DeviceFleet, sample_device_fleet
from ..systems.devices import HETEROGENEITY_PRESETS

#: the five datasets of the paper's evaluation
DATASETS = ("mnist", "cifar10", "cifar100", "tinyimagenet", "reddit")


@dataclass(frozen=True)
class ExperimentPreset:
    """Everything needed to instantiate one dataset's federated experiment."""

    dataset: str
    num_clients: int = 16
    examples_per_client: int = 60
    classes_per_client: int = 2
    num_rounds: int = 20
    clients_per_round: int = 4
    local_iterations: int = 8
    batch_size: int = 16
    learning_rate: float = 0.1
    clip_norm: Optional[float] = 5.0
    heterogeneity: str = "high"
    dynamic_resources: bool = False
    style_scale: float = 2.5
    #: named system-heterogeneity scenario (see ``repro.scenarios``);
    #: "ideal" reproduces the paper's every-client-finishes assumption
    scenario: str = "ideal"
    #: server aggregation mode (see ``repro.server.scheduler``): "sync",
    #: "fedasync" or "fedbuff" — keys the result cache like the scenario
    aggregation: str = "sync"
    #: wire codec for the parameter round trip (``repro.parallel.codec``):
    #: "dense" (historical raw blocks), "sparse" (lossless indexed slices),
    #: "int8"/"pq" (lossy low-precision) — keys the result cache
    codec: str = "dense"
    #: lazy O(cohort) fleet materialization (the default); False retains the
    #: eager build-everything-up-front path.  Cache-keyed like every field.
    lazy_fleet: bool = True
    #: personalized-evaluation cap (``None`` = every client, the paper's
    #: metric; large-fleet presets sample a fixed deterministic subset)
    eval_clients: Optional[int] = None
    #: named deterministic fault plan (``repro.parallel.faults``), seeded
    #: from the run seed; None runs fault-free.  Cache-keyed like the codec.
    fault_plan: Optional[str] = None
    #: supervised-execution knobs (``repro.parallel.supervision``): per-task
    #: wall-clock timeout and bounded retries with exponential backoff
    task_timeout: Optional[float] = None
    max_retries: int = 0
    #: vectorized cohort training (``repro.federated.batched``): fuse a
    #: round's local updates into one batched tensor program when the
    #: strategy/model pair supports it.  Bit-identical histories either
    #: way; cache-keyed like every field.
    batch_cohort: bool = False
    #: reducer shard count (``repro.parallel.sharding``): partition the
    #: parameter manifest by key across N parameter-server reducer shards.
    #: Histories are bit-identical at every count; cache-keyed regardless.
    reducer_shards: int = 1
    seed: int = 0
    extra_config: Dict[str, float] = field(default_factory=dict)


DEFAULT_PRESETS: Dict[str, ExperimentPreset] = {
    "mnist": ExperimentPreset(dataset="mnist", classes_per_client=2),
    "cifar10": ExperimentPreset(dataset="cifar10", classes_per_client=2),
    "cifar100": ExperimentPreset(dataset="cifar100", classes_per_client=4),
    "tinyimagenet": ExperimentPreset(dataset="tinyimagenet", classes_per_client=8),
    # next-word prediction needs a larger learning rate, as in the paper
    # (they use 8 with gradient clipping for the LSTM model)
    "reddit": ExperimentPreset(dataset="reddit", learning_rate=1.5,
                               examples_per_client=80, classes_per_client=2),
    # cross-device-scale virtual fleets: construction is O(cohort), so the
    # fleet size costs (almost) nothing — only the dispatched cohorts and
    # the capped evaluation subset are ever materialized
    "mnist-100k": ExperimentPreset(
        dataset="mnist", num_clients=100_000, examples_per_client=24,
        num_rounds=3, clients_per_round=32, local_iterations=2,
        eval_clients=64),
    "mnist-1m": ExperimentPreset(
        dataset="mnist", num_clients=1_000_000, examples_per_client=16,
        num_rounds=2, clients_per_round=16, local_iterations=1,
        eval_clients=32),
}


def preset_for(dataset: str) -> ExperimentPreset:
    """The preset for a paper dataset or a named large-fleet variant."""
    key = dataset.lower()
    if key not in DEFAULT_PRESETS:
        raise ValueError(f"unknown dataset or preset {dataset!r}; choose "
                         f"from {sorted(DEFAULT_PRESETS)}")
    return DEFAULT_PRESETS[key]


def scaled(preset: ExperimentPreset, **overrides) -> ExperimentPreset:
    """A copy of ``preset`` with the given fields replaced."""
    return replace(preset, **overrides)


def build_experiment(preset: ExperimentPreset
                     ) -> tuple[FederatedDataset, Callable[[], Sequential],
                                FederatedConfig, DeviceFleet]:
    """Materialize the dataset, model builder, config and device fleet."""
    if preset.heterogeneity not in HETEROGENEITY_PRESETS:
        raise ValueError(
            f"unknown heterogeneity level {preset.heterogeneity!r}")
    if preset.scenario not in available_scenarios():
        raise ValueError(
            f"unknown scenario {preset.scenario!r}; "
            f"choose from {available_scenarios()}")
    if preset.aggregation not in AGGREGATIONS:
        raise ValueError(
            f"unknown aggregation mode {preset.aggregation!r}; "
            f"choose from {AGGREGATIONS}")
    if preset.codec not in available_codecs():
        raise ValueError(
            f"unknown codec {preset.codec!r}; "
            f"choose from {available_codecs()}")
    if (preset.fault_plan is not None
            and preset.fault_plan not in available_fault_plans()):
        raise ValueError(
            f"unknown fault plan {preset.fault_plan!r}; "
            f"choose from {available_fault_plans()}")
    dataset = build_federated_dataset(
        preset.dataset, preset.num_clients,
        classes_per_client=preset.classes_per_client,
        examples_per_client=preset.examples_per_client,
        style_scale=preset.style_scale, seed=preset.seed,
        lazy=preset.lazy_fleet)
    config = FederatedConfig(
        num_rounds=preset.num_rounds,
        clients_per_round=preset.clients_per_round,
        local_iterations=preset.local_iterations,
        batch_size=preset.batch_size,
        learning_rate=preset.learning_rate,
        clip_norm=preset.clip_norm,
        seed=preset.seed,
        scenario=build_scenario(preset.scenario,
                                num_clients=preset.num_clients,
                                num_rounds=preset.num_rounds,
                                seed=preset.seed),
        aggregation=preset.aggregation,
        codec=preset.codec,
        faults=(build_fault_plan(preset.fault_plan, seed=preset.seed)
                if preset.fault_plan is not None else None),
        task_timeout=preset.task_timeout,
        max_retries=preset.max_retries,
        batch_cohort=preset.batch_cohort,
        reducer_shards=preset.reducer_shards,
        fleet=FleetConfig(lazy=preset.lazy_fleet,
                          eval_clients=preset.eval_clients),
        extra=dict(preset.extra_config))
    fleet = sample_device_fleet(
        preset.num_clients,
        levels=HETEROGENEITY_PRESETS[preset.heterogeneity],
        dynamic=preset.dynamic_resources, seed=preset.seed,
        lazy=preset.lazy_fleet)

    def model_builder() -> Sequential:
        return build_model_for_dataset(preset.dataset, seed=preset.seed)

    return dataset, model_builder, config, fleet
