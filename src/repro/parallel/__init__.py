"""Pluggable parallel execution backends (serial / thread / process)."""

from .broadcast import (Broadcast, BroadcastHandle, broadcast_stats,
                        materialize, reset_broadcast_stats)
from .codec import (CODECS, Codec, DecodedParams, EncodedBlock, EncodedParams,
                    IndexedSlices, LOSSLESS_CODECS, available_codecs,
                    decode_block, resolve_codec)
from .executors import (EXECUTOR_BACKENDS, Executor, ProcessPoolExecutor,
                        SerialExecutor, ThreadPoolExecutor, available_backends,
                        clone_via_pickle, default_worker_count,
                        resolve_executor)

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "EXECUTOR_BACKENDS",
    "available_backends",
    "resolve_executor",
    "clone_via_pickle",
    "default_worker_count",
    "Broadcast",
    "BroadcastHandle",
    "materialize",
    "broadcast_stats",
    "reset_broadcast_stats",
    "Codec",
    "CODECS",
    "DecodedParams",
    "EncodedBlock",
    "EncodedParams",
    "IndexedSlices",
    "LOSSLESS_CODECS",
    "available_codecs",
    "decode_block",
    "resolve_codec",
]
