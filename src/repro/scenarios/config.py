"""Declarative description of a system-heterogeneity scenario."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: the participation policies the server can apply at the end of a round
PARTICIPATION_POLICIES = ("wait-all", "deadline", "fastest-k")


@dataclass(frozen=True)
class ScenarioConfig:
    """How the federation's system layer misbehaves during a simulation.

    Availability
        ``availability`` is the per-round Bernoulli probability that an
        invited client is reachable at all; ``availability_trace`` overrides
        it with an explicit schedule mapping ``round_index`` to the tuple of
        *available* client ids (rounds missing from the trace leave every
        client available).

    Stragglers
        Every client's round latency comes from the cost model
        (``T_k = F_hat / F_k + alpha * B_hat / B_k``, Eq. 14).  On top of
        that, with probability ``straggler_prob`` a client suffers a
        background-load spike that multiplies its latency by
        ``straggler_slowdown`` — sampled deterministically from
        ``(seed, round_index, client_id)``.

    Participation policy
        * ``wait-all`` — the server waits for every surviving client
          (Eq. 18's synchronous round time).
        * ``deadline`` — clients slower than the cutoff are dropped; the
          cutoff is ``deadline_seconds`` (absolute) or ``deadline_factor``
          times the round's fastest client (scale-free).  ``over_selection``
          lets the server invite extra clients to compensate for expected
          drops.
        * ``fastest-k`` — the server closes the round after the fastest
          ``fastest_k`` updates arrive.

    ``min_participants`` is the server's quorum: the policy never drops below
    that many clients (it waits past the deadline for the fastest ones), so
    aggregation always has something to average unless nobody was available.
    """

    name: str = "custom"
    policy: str = "wait-all"
    availability: float = 1.0
    availability_trace: Optional[Dict[int, Tuple[int, ...]]] = field(default=None)
    deadline_seconds: Optional[float] = None
    deadline_factor: Optional[float] = None
    fastest_k: Optional[int] = None
    over_selection: float = 1.0
    straggler_prob: float = 0.0
    straggler_slowdown: float = 4.0
    min_participants: int = 1

    def __post_init__(self) -> None:
        if self.policy not in PARTICIPATION_POLICIES:
            raise ValueError(
                f"unknown participation policy {self.policy!r}; "
                f"choose from {PARTICIPATION_POLICIES}")
        if not 0.0 < self.availability <= 1.0:
            raise ValueError(
                f"availability must be in (0, 1], got {self.availability}")
        if self.policy == "deadline":
            if (self.deadline_seconds is None) == (self.deadline_factor is None):
                raise ValueError(
                    "the deadline policy needs exactly one of "
                    "deadline_seconds (absolute) or deadline_factor (relative)")
            if self.deadline_seconds is not None and self.deadline_seconds <= 0:
                raise ValueError("deadline_seconds must be positive")
            if self.deadline_factor is not None and self.deadline_factor < 1.0:
                raise ValueError(
                    "deadline_factor must be >= 1 (1 = only the fastest client)")
        if self.policy == "fastest-k":
            if self.fastest_k is None or self.fastest_k < 1:
                raise ValueError("the fastest-k policy needs fastest_k >= 1")
        if self.over_selection < 1.0:
            raise ValueError("over_selection must be >= 1")
        if not 0.0 <= self.straggler_prob <= 1.0:
            raise ValueError("straggler_prob must be in [0, 1]")
        if self.straggler_slowdown < 1.0:
            raise ValueError("straggler_slowdown must be >= 1")
        if self.min_participants < 0:
            raise ValueError("min_participants must be non-negative")
        if self.availability_trace is not None:
            # normalize to plain {int: sorted tuple} so configs built from
            # JSON (string keys, lists) compare and pickle predictably
            trace = {int(round_index): tuple(sorted(int(cid) for cid in ids))
                     for round_index, ids in dict(self.availability_trace).items()}
            object.__setattr__(self, "availability_trace", trace)
