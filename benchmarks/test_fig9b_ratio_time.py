"""Figure 9b: training / communication / total time versus sparse ratio."""

from __future__ import annotations

import pytest

from repro.experiments import pattern_ratio_sweep
from repro.sparsity import BYTES_PER_PARAMETER
from repro.systems import REFERENCE_BANDWIDTH_BYTES

from conftest import bench_overrides, print_rows

RATIOS = (0.2, 0.4, 0.6, 0.8)


@pytest.mark.benchmark(group="figure9b")
def test_fig9b_time_vs_ratio(benchmark):
    overrides = bench_overrides()

    def run():
        return pattern_ratio_sweep(dataset="mnist", ratios=RATIOS,
                                   patterns=("learnable",),
                                   overrides=overrides)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in rows:
        row["communication_time_seconds"] = (
            row["upload_bytes"] / REFERENCE_BANDWIDTH_BYTES)
    print_rows("Figure 9b: time decomposition vs sparse ratio (learnable)", rows)

    times = [row["total_time_seconds"] for row in
             sorted(rows, key=lambda r: r["sparse_ratio"])]
    flops = [row["total_flops"] for row in
             sorted(rows, key=lambda r: r["sparse_ratio"])]
    # larger sparse ratios => strictly more computation, and no faster rounds
    assert flops == sorted(flops)
    assert times[-1] >= times[0]
    assert BYTES_PER_PARAMETER > 0
