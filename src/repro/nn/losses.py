"""Loss functions returning ``(loss_value, gradient_wrt_predictions)``."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .activations import softmax
from .base import Array, as_float


def softmax_cross_entropy(logits: Array, labels: Array) -> Tuple[float, Array]:
    """Softmax cross-entropy over the last axis.

    ``logits`` may be ``(N, C)`` or ``(N, T, C)``; ``labels`` are integer
    class ids of shape ``(N,)`` or ``(N, T)``.  The loss is averaged over all
    prediction positions and the returned gradient has the shape of
    ``logits``.
    """
    logits = as_float(logits)
    labels = np.asarray(labels)
    flat_logits = logits.reshape(-1, logits.shape[-1])
    flat_labels = labels.reshape(-1)
    if flat_logits.shape[0] != flat_labels.shape[0]:
        raise ValueError(
            f"logits/labels size mismatch: {logits.shape} vs {labels.shape}")
    n = flat_logits.shape[0]
    probs = softmax(flat_logits, axis=-1)
    eps = 1e-12
    loss = -np.mean(np.log(probs[np.arange(n), flat_labels] + eps))
    grad = probs.copy()
    grad[np.arange(n), flat_labels] -= 1.0
    grad /= n
    return float(loss), grad.reshape(logits.shape)


def mean_squared_error(predictions: Array, targets: Array) -> Tuple[float, Array]:
    """Mean squared error averaged over every element."""
    predictions = as_float(predictions)
    targets = as_float(targets)
    if predictions.shape != targets.shape:
        raise ValueError(
            f"prediction/target shape mismatch: {predictions.shape} vs {targets.shape}")
    diff = predictions - targets
    loss = float(np.mean(diff ** 2))
    grad = 2.0 * diff / diff.size
    return loss, grad


def accuracy(logits: Array, labels: Array) -> float:
    """Top-1 classification accuracy for ``(N, C)`` or ``(N, T, C)`` logits."""
    logits = as_float(logits)
    labels = np.asarray(labels)
    predictions = np.argmax(logits, axis=-1)
    return float(np.mean(predictions == labels))
