"""Accuracy utility function used by the P-UCBV reward (Eq. 15).

The paper transforms raw accuracy through ``U(x) = 10 - 20 / (1 + e^(0.35 x))``
(with accuracy expressed in percent) so that marginal accuracy gains near
convergence contribute less to the reward than early gains.
"""

from __future__ import annotations

import numpy as np


def accuracy_utility(accuracy_percent: float, *, scale: float = 0.35,
                     amplitude: float = 10.0) -> float:
    """``U(x) = amplitude - 2 * amplitude / (1 + exp(scale * x))``.

    ``accuracy_percent`` is the accuracy in percent (0-100).  The function is
    monotone increasing, equals 0 at 0% and saturates at ``amplitude``.
    """
    if not 0.0 <= accuracy_percent <= 100.0:
        raise ValueError(
            f"accuracy_percent must be in [0, 100], got {accuracy_percent}")
    x = float(accuracy_percent)
    return amplitude - 2.0 * amplitude / (1.0 + float(np.exp(scale * x)))


def utility_gain(current_accuracy_percent: float,
                 previous_accuracy_percent: float, **kwargs) -> float:
    """``U(a_r) - U(a_{r-1})``: the accuracy part of the reward."""
    return (accuracy_utility(current_accuracy_percent, **kwargs)
            - accuracy_utility(previous_accuracy_percent, **kwargs))
