"""FedLPS learnable sparse training (Algorithm 1, lines 17-27).

One client-side update round:

1. import the global parameters and the client's persisted importance
   indicator ``Q``;
2. in every local iteration, derive the importance-based pattern at the
   assigned sparse ratio (Eq. 4/5), train the masked model on a mini-batch
   (Eq. 10) and update ``Q`` by back-propagation (Eq. 11);
3. after the last iteration, store the personalized sparse model locally and
   upload only the masked residual ``(omega_global - omega_local) * m``
   (Eq. 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..data.dataset import Dataset
from ..nn import SGD, accuracy, softmax_cross_entropy
from ..nn.activations import sigmoid
from ..nn.batched import BatchedModel, stack_param_dicts
from ..nn.losses import accuracy_cohort, softmax_cross_entropy_cohort
from ..nn.model import Sequential
from ..nn.optim import BatchedSGD
from ..nn.params import ParamDict, copy_params, multiply, subtract
from ..sparsity.masks import UnitPattern, build_parameter_mask, gates_from_pattern
from ..federated.batched import client_batch_schedule
from ..federated.local import iterate_batches
from .importance import ImportanceIndicator
from .losses import add_gradients, combine_unit_gradients, proximal_gradient, proximal_loss


@dataclass
class SparseTrainingResult:
    """Everything the FedLPS client produces in one round."""

    personalized_params: ParamDict
    residual: ParamDict
    pattern: UnitPattern
    importance: ImportanceIndicator
    sparse_ratio: float
    train_accuracy: float
    train_loss: float
    examples_seen: int


def learnable_sparse_training(model: Sequential,
                              global_params: Mapping[str, np.ndarray],
                              importance: ImportanceIndicator,
                              dataset: Dataset, *, sparse_ratio: float,
                              iterations: int, batch_size: int,
                              learning_rate: float, momentum: float = 0.0,
                              clip_norm: Optional[float] = None,
                              prox_mu: float = 1.0,
                              importance_lambda: float = 1.0,
                              importance_learning_rate: Optional[float] = None,
                              refresh_pattern_each_iteration: bool = False,
                              rng: Optional[np.random.Generator] = None
                              ) -> SparseTrainingResult:
    """Run the FedLPS local update and return the personalized sparse model.

    Args:
        refresh_pattern_each_iteration: Algorithm 1 re-derives the mask from
            ``Q`` in every local iteration.  With the small backbones of this
            reproduction that per-iteration re-masking makes the top-k pattern
            oscillate between marginal units and wastes most of the round's
            training, so by default the pattern is derived once per round from
            the incoming ``Q`` and held fixed while ``Q`` itself keeps being
            learned for the next round (see DESIGN.md).  Set this flag to True
            for the paper's literal per-iteration behaviour.
    """
    if not 0.0 < sparse_ratio <= 1.0:
        raise ValueError(f"sparse_ratio must be in (0, 1], got {sparse_ratio}")
    rng = rng or np.random.default_rng(0)
    importance = importance.copy()
    q_lr = importance_learning_rate if importance_learning_rate is not None \
        else learning_rate

    params = copy_params(global_params)
    global_reference = copy_params(global_params)
    optimizer = SGD(learning_rate, momentum=momentum, clip_norm=clip_norm)

    losses = []
    accuracies = []
    examples = 0
    # (Eq. 4/5) importance-derived pattern and parameter mask
    pattern = importance.pattern(model, sparse_ratio)
    param_mask = build_parameter_mask(model, pattern)
    for batch_x, batch_y in iterate_batches(dataset, batch_size, iterations, rng=rng):
        if refresh_pattern_each_iteration:
            pattern = importance.pattern(model, sparse_ratio)
            param_mask = build_parameter_mask(model, pattern)

        model.set_parameters(params)
        model.set_unit_gates(gates_from_pattern(pattern))
        model.zero_grad()
        logits = model.forward(batch_x, train=True)
        task_loss, grad = softmax_cross_entropy(logits, batch_y)
        accuracies.append(accuracy(logits, batch_y))
        model.backward(grad)

        grads = model.get_gradients()
        gate_grads = _normalize_gate_gradients(model.gate_gradients())
        # (Eq. 7) proximal pull towards the global parameters
        prox_grads = proximal_gradient(params, global_reference, prox_mu)
        grads = add_gradients(grads, prox_grads)
        # (Eq. 10) only the retained sub-model's parameters are updated
        grads = {key: grads[key] * param_mask[key] for key in grads}
        _step_on_live_params(model, optimizer, grads)
        params = model.get_parameters()

        # (Eq. 11) importance indicator update: straight-through task gradient
        # through the unit gates plus the Eq. (8) regularizer gradient
        reg_grads = importance.regularization_gradient(model, importance_lambda)
        q_grads = combine_unit_gradients(gate_grads, reg_grads)
        importance.apply_gradient(q_grads, q_lr)

        losses.append(task_loss
                      + proximal_loss(params, global_reference, prox_mu)
                      + importance.regularization_loss(model, importance_lambda))
        examples += len(batch_y)
    model.set_unit_gates(None)

    # (Alg. 1 lines 23-25) personalized model and masked residual.  The mask
    # is the one the round actually trained with; the updated ``Q`` shapes the
    # next round's pattern.
    final_pattern = (importance.pattern(model, sparse_ratio)
                     if refresh_pattern_each_iteration else pattern)
    final_mask = build_parameter_mask(model, final_pattern)
    personalized = multiply(params, final_mask)
    residual = multiply(subtract(global_reference, params), final_mask)
    return SparseTrainingResult(
        personalized_params=personalized, residual=residual,
        pattern=final_pattern, importance=importance, sparse_ratio=sparse_ratio,
        train_accuracy=float(np.mean(accuracies)) if accuracies else 0.0,
        train_loss=float(np.mean(losses)) if losses else 0.0,
        examples_seen=examples)


def learnable_sparse_training_cohort(
        model: Sequential,
        global_params: Mapping[str, np.ndarray],
        importances: Sequence[ImportanceIndicator],
        datasets: Sequence[Dataset], *,
        sparse_ratios: Sequence[float],
        iterations: int, batch_size: int,
        learning_rate: float, momentum: float = 0.0,
        clip_norm: Optional[float] = None,
        prox_mu: float = 1.0,
        importance_lambda: float = 1.0,
        importance_learning_rate: Optional[float] = None,
        refresh_pattern_each_iteration: bool = False,
        rngs: Optional[Sequence[np.random.Generator]] = None
) -> List[SparseTrainingResult]:
    """Run the FedLPS local update for a whole cohort as one batched program.

    Bit-for-bit equivalent to calling :func:`learnable_sparse_training` once
    per client in order: the heavy forward/backward/step tensor program runs
    batched along a leading client axis (per-client patterns as stacked unit
    gates, per-client masks broadcast over the gradients), while the cheap
    per-unit machinery — pattern derivation, gate-gradient normalization,
    importance targets/regularizers, prox losses — loops over contiguous
    per-client slices so every reduction reproduces the sequential
    computation exactly.  ``model`` is the architecture template; its own
    parameters are left untouched.
    """
    cohort = len(datasets)
    if cohort == 0:
        return []
    for name, value in (("importances", importances),
                        ("sparse_ratios", sparse_ratios), ("rngs", rngs)):
        if value is not None and len(value) != cohort:
            raise ValueError(f"{name} must have one entry per client")
    for ratio in sparse_ratios:
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"sparse_ratio must be in (0, 1], got {ratio}")
    if rngs is None:
        rngs = [np.random.default_rng(0) for _ in range(cohort)]
    importances = [importance.copy() for importance in importances]
    q_lr = importance_learning_rate if importance_learning_rate is not None \
        else learning_rate

    global_reference = copy_params(global_params)
    reference_b = {key: np.asarray(value, dtype=np.float64)[None]
                   for key, value in global_reference.items()}
    batched = BatchedModel(model, cohort)
    batched.set_parameters(
        {key: np.repeat(np.asarray(value, dtype=np.float64)[None],
                        cohort, axis=0)
         for key, value in global_params.items()})
    optimizer = BatchedSGD(learning_rate, momentum=momentum,
                           clip_norm=clip_norm)

    patterns = [importances[i].pattern(model, sparse_ratios[i])
                for i in range(cohort)]
    param_masks = [build_parameter_mask(model, pattern)
                   for pattern in patterns]
    stacked_masks = stack_param_dicts(param_masks)

    def _stack_gates(pattern_list):
        gate_dicts = [gates_from_pattern(pattern) for pattern in pattern_list]
        return {group.layer_name:
                np.stack([gates[group.layer_name] for gates in gate_dicts])
                for group in model.unit_groups}

    batched.set_unit_gates(_stack_gates(patterns))

    schedules = [client_batch_schedule(len(datasets[i]), batch_size,
                                       iterations, rng=rngs[i])
                 for i in range(cohort)]
    counts = np.array([len(schedule[0]) if schedule else 0
                       for schedule in schedules], dtype=np.int64)
    steps = len(schedules[0]) if schedules else 0
    width = int(counts.max()) if steps else 0
    if np.any(counts != width):
        batched.set_batch_counts(counts)

    losses: List[List[float]] = [[] for _ in range(cohort)]
    accuracies: List[List[float]] = [[] for _ in range(cohort)]
    examples = [0] * cohort
    x_pad = None
    y_pad = None
    if steps:
        sample_shape = datasets[0].x.shape[1:]
        x_pad = np.zeros((cohort, width) + tuple(sample_shape),
                         dtype=np.float64)
        y_pad = np.zeros((cohort, width), dtype=np.int64)

    factor = 2.0 * prox_mu
    for step in range(steps):
        if refresh_pattern_each_iteration:
            patterns = [importances[i].pattern(model, sparse_ratios[i])
                        for i in range(cohort)]
            param_masks = [build_parameter_mask(model, pattern)
                           for pattern in patterns]
            stacked_masks = stack_param_dicts(param_masks)
            batched.set_unit_gates(_stack_gates(patterns))
        for index in range(cohort):
            batch = schedules[index][step]
            x_pad[index, :counts[index]] = datasets[index].x[batch]
            y_pad[index, :counts[index]] = datasets[index].y[batch]
        batched.zero_grad()
        logits = batched.forward(x_pad, train=True)
        task_losses, grad = softmax_cross_entropy_cohort(logits, y_pad, counts)
        step_accuracies = accuracy_cohort(logits, y_pad, counts)
        batched.backward(grad)

        grads = batched.get_gradients()
        stacked_gate_grads = batched.gate_gradients()
        current = batched.get_parameters()
        # (Eq. 7) proximal pull towards the global parameters, broadcast
        # along the client axis (same values as per-client add_gradients)
        grads = {key: grads[key] + factor * (current[key] - reference_b[key])
                 for key in grads}
        # (Eq. 10) only the retained sub-models' parameters are updated
        grads = {key: grads[key] * stacked_masks[key] for key in grads}
        optimizer.step(batched.live_parameters(), grads)
        post = batched.get_parameters()

        for index in range(cohort):
            # (Eq. 11) importance update on this client's slice, mirroring
            # the sequential order: normalized task gate-gradient plus the
            # Eq. (8) regularizer derived from the POST-step parameters
            gate_grads = _normalize_gate_gradients(
                {name: values[index]
                 for name, values in stacked_gate_grads.items()})
            targets = _smoothed_targets(batched.unit_weight_magnitudes(index))
            scores = importances[index].scores
            reg_grads = {name: 2.0 * importance_lambda * (values - targets[name])
                         for name, values in scores.items()}
            q_grads = combine_unit_gradients(gate_grads, reg_grads)
            importances[index].apply_gradient(q_grads, q_lr)

            prox_total = 0.0
            for key in post:
                diff = post[key][index] - global_reference[key]
                prox_total += float(np.sum(diff ** 2))
            reg_total = 0.0
            for name, values in importances[index].scores.items():
                reg_total += float(np.sum((values - targets[name]) ** 2))
            losses[index].append(float(task_losses[index])
                                 + prox_mu * prox_total
                                 + importance_lambda * reg_total)
            accuracies[index].append(float(step_accuracies[index]))
            examples[index] += int(counts[index])

    batched.set_unit_gates(None)
    final_stacked = batched.get_parameters()
    results: List[SparseTrainingResult] = []
    for index in range(cohort):
        params = {key: np.array(value[index], copy=True)
                  for key, value in final_stacked.items()}
        final_pattern = (importances[index].pattern(model, sparse_ratios[index])
                         if refresh_pattern_each_iteration
                         else patterns[index])
        final_mask = build_parameter_mask(model, final_pattern)
        personalized = multiply(params, final_mask)
        residual = multiply(subtract(global_reference, params), final_mask)
        results.append(SparseTrainingResult(
            personalized_params=personalized, residual=residual,
            pattern=final_pattern, importance=importances[index],
            sparse_ratio=sparse_ratios[index],
            train_accuracy=(float(np.mean(accuracies[index]))
                            if accuracies[index] else 0.0),
            train_loss=(float(np.mean(losses[index]))
                        if losses[index] else 0.0),
            examples_seen=examples[index]))
    return results


def _smoothed_targets(magnitudes: Mapping[str, np.ndarray]
                      ) -> Dict[str, np.ndarray]:
    """Per-layer ``sigmoid(standardized |omega|_J)`` from given magnitudes.

    The per-client twin of
    :func:`repro.core.importance.smoothed_unit_magnitudes` — identical math
    on a magnitude dictionary computed from one client's parameter slice.
    """
    targets: Dict[str, np.ndarray] = {}
    for name, magnitude in magnitudes.items():
        std = float(np.std(magnitude))
        if std < 1e-12:
            centered = np.zeros_like(magnitude)
        else:
            centered = (magnitude - float(np.mean(magnitude))) / std
        targets[name] = sigmoid(centered)
    return targets


def _normalize_gate_gradients(gate_grads: Mapping[str, np.ndarray]
                              ) -> dict[str, np.ndarray]:
    """Scale each layer's gate gradient to unit maximum magnitude.

    The raw straight-through gradient sums over batch and spatial positions,
    so convolution layers produce values orders of magnitude larger than
    fully-connected layers.  Only the relative ordering within a layer matters
    for the quantile threshold of Eq. (4), so each layer is normalized to make
    the importance learning rate meaningful across architectures.
    """
    normalized = {}
    for name, grad in gate_grads.items():
        grad = np.asarray(grad, dtype=np.float64)
        peak = float(np.max(np.abs(grad)))
        normalized[name] = grad / peak if peak > 0 else grad
    return normalized


def _step_on_live_params(model: Sequential, optimizer: SGD,
                         grads: ParamDict) -> None:
    live = {}
    for layer in model.layers:
        for key in layer.params:
            live[f"{layer.name}.{key}"] = layer.params[key]
    optimizer.step(live, grads)
