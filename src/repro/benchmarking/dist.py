"""Distributed-execution benchmark: socket rounds and sharded reduction.

``repro bench --dist-scale`` exercises the two halves of the distributed
stack (:mod:`repro.parallel.distributed`, :mod:`repro.parallel.sharding`)
with gates on both:

* **Socket rounds** — the fan-out workload runs on a real
  :class:`~repro.parallel.distributed.SocketExecutor` (localhost
  subprocess workers, real TCP frames) once per reducer shard count, and
  every history must be **bit-identical** to the serial unsharded
  reference.  Wall-clock and transport bytes ride along as the
  trajectory numbers.
* **Shard balance** — per-shard aggregation bytes must shrink ~1/N with
  the shard count.  The real model's manifest is too lumpy to gate on
  (one fc matrix dominates MNIST's byte mass, so a 4-way split of 8 keys
  is whatever the key hash makes it), so the balance gate runs the
  production reduction kernel over a synthetic manifest of many
  equal-size keys — the regime parameter servers are built for — and
  checks the largest shard against its fair 1/N share.  The real runs'
  per-shard ledgers are reported alongside, un-gated.

The report lands in ``BENCH_dist.json``, schema-compatible with the
``BENCH_fanout`` family (``bench_scale``, ``cpu_count``, ``gate``).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, Iterable, Optional

import numpy as np

from ..experiments import run_method, scaled
from ..parallel import SocketExecutor
from ..parallel.sharding import (reset_shard_stats, shard_plan, shard_stats,
                                 sharded_weighted_average)
from .fanout import BENCH_METHOD, fanout_preset

#: reducer shard counts every distributed bench sweeps
SHARD_COUNTS = (1, 2, 4)

#: localhost socket workers backing the timed runs
DIST_WORKERS = 2

#: synthetic balance manifest: many equal keys, the parameter-server regime
BALANCE_KEYS = 64
BALANCE_KEY_ELEMENTS = 256
BALANCE_UPDATES = 8

#: the largest shard may exceed its fair 1/N byte share by this fraction
GATE_BALANCE_TOLERANCE = 0.25


def dist_preset(scale: float = 1.0):
    """The distributed workload at ``scale`` — the fan-out workload."""
    return fanout_preset(scale)


def measure_dist_cell(preset, shards: int, reference) -> Dict[str, object]:
    """One socket run at ``shards`` reducer shards, checked bit-identical."""
    reset_shard_stats()
    with SocketExecutor(DIST_WORKERS) as executor:
        executor.warm_up()
        start = time.perf_counter()
        history = run_method(BENCH_METHOD,
                             scaled(preset, reducer_shards=shards),
                             executor=executor)
        wall = time.perf_counter() - start
        sent, received = executor.bytes_sent, executor.bytes_received
    stats = shard_stats()
    return {
        "reducer_shards": shards,
        "wall_seconds": wall,
        "transport_sent_bytes": sent,
        "transport_received_bytes": received,
        "reduce_bytes": stats["reduce_bytes"],
        # the sharded path only engages past one shard; at 1 the ledger is
        # legitimately empty (the unsharded kernels run directly)
        "per_shard_bytes": stats["per_shard_bytes"].get(shards),
        "final_accuracy": history.final_accuracy(),
        "matches_serial_reference": history.to_dict() == reference.to_dict(),
    }


def measure_shard_balance(shard_counts: Iterable[int] = SHARD_COUNTS,
                          ) -> Dict[str, object]:
    """Per-shard byte shares of the production reducer on an even manifest.

    Runs :func:`sharded_weighted_average` (the same code path the server
    dispatches through) over ``BALANCE_KEYS`` equal-size float64 keys and
    ``BALANCE_UPDATES`` updates, and reports each shard count's per-shard
    byte ledger as fractions of the total.
    """
    rng = np.random.default_rng(0)
    keys = [f"layer{index:03d}.W" for index in range(BALANCE_KEYS)]
    updates = [{key: rng.standard_normal(BALANCE_KEY_ELEMENTS)
                for key in keys} for _ in range(BALANCE_UPDATES)]
    weights = [1.0] * BALANCE_UPDATES
    cells: Dict[str, Dict[str, object]] = {}
    for shards in shard_counts:
        with shard_plan(shards) as plan:
            sharded_weighted_average(plan, updates, weights)
            per_shard = list(plan.per_shard_bytes)
        total = sum(per_shard)
        fair = 1.0 / shards
        max_fraction = max(per_shard) / total if total else None
        cells[str(shards)] = {
            "per_shard_bytes": per_shard,
            "total_bytes": total,
            "max_shard_fraction": max_fraction,
            "fair_fraction": fair,
            "within_tolerance": (max_fraction is not None
                                 and max_fraction
                                 <= fair * (1.0 + GATE_BALANCE_TOLERANCE)),
        }
    return {
        "manifest_keys": BALANCE_KEYS,
        "key_elements": BALANCE_KEY_ELEMENTS,
        "updates": BALANCE_UPDATES,
        "tolerance": GATE_BALANCE_TOLERANCE,
        "cells": cells,
    }


def _gate(cells: Dict[str, Dict[str, object]],
          balance: Dict[str, object]) -> Dict[str, object]:
    """Pass/fail: socket histories bit-identical, shard bytes ~1/N."""
    identical = all(cell["matches_serial_reference"]
                    for cell in cells.values())
    balanced = all(cell["within_tolerance"]
                   for cell in balance["cells"].values())
    return {
        "pass": bool(identical and balanced),
        "bit_identical": identical,
        "shard_bytes_scale": balanced,
        "balance_tolerance": balance["tolerance"],
        "max_shard_fractions": {
            count: cell["max_shard_fraction"]
            for count, cell in balance["cells"].items()},
    }


def run_dist_bench(scale: float = 1.0,
                   shard_counts: Iterable[int] = SHARD_COUNTS,
                   output: Optional[str] = None) -> Dict[str, object]:
    """Run the distributed benchmark and return (optionally write) the report.

    ``scale`` multiplies the fan-out workload, the same convention as
    ``repro bench --scale``; one serial unsharded run anchors the
    bit-identity check for every socket cell.
    """
    preset = dist_preset(scale)
    shard_counts = list(shard_counts)
    reference = run_method(BENCH_METHOD, preset)
    cells: Dict[str, Dict[str, object]] = {}
    for shards in shard_counts:
        cells[str(shards)] = measure_dist_cell(preset, shards, reference)
    balance = measure_shard_balance(shard_counts)
    report: Dict[str, object] = {
        "bench_scale": scale,
        "method": BENCH_METHOD,
        "backend": "socket",
        "workers": DIST_WORKERS,
        "workload": {
            "dataset": preset.dataset,
            "num_clients": preset.num_clients,
            "clients_per_round": preset.clients_per_round,
            "num_rounds": preset.num_rounds,
            "local_iterations": preset.local_iterations,
        },
        "python": platform.python_version(),
        "platform": sys.platform,
        "cpu_count": os.cpu_count(),
        "serial_reference": {
            "final_accuracy": reference.final_accuracy(),
            "best_accuracy": reference.best_accuracy(),
        },
        "shard_counts": shard_counts,
        "cells": cells,
        "shard_balance": balance,
        "gate": _gate(cells, balance),
    }
    if output:
        Path(output).write_text(json.dumps(report, indent=2, sort_keys=True))
    return report


def format_dist_report(report: Dict[str, object]) -> str:
    """Render a distributed report as the aligned text table the CLI prints."""
    lines = [f"# repro bench --dist-scale {report['bench_scale']} — "
             f"method {report['method']}, backend {report['backend']} "
             f"({report['workers']} workers), cpu_count {report['cpu_count']}"]
    header = (f"{'shards':>6s} | {'wall_s':>7s} | {'sent_B':>9s} | "
              f"{'recv_B':>9s} | {'reduce_B':>9s} | {'max_frac':>8s} | "
              f"{'history':>9s}")
    lines += [header, "-" * len(header)]
    balance_cells = report["shard_balance"]["cells"]
    for count, cell in report["cells"].items():
        fraction = balance_cells[count]["max_shard_fraction"]
        lines.append(
            f"{count:>6s} | {cell['wall_seconds']:>7.3f} | "
            f"{cell['transport_sent_bytes']:>9d} | "
            f"{cell['transport_received_bytes']:>9d} | "
            f"{cell['reduce_bytes']:>9d} | "
            f"{'-' if fraction is None else format(fraction, '.3f'):>8s} | "
            f"{'identical' if cell['matches_serial_reference'] else 'DIVERGED':>9s}")
    gate = report["gate"]
    lines.append(f"gate: bit-identical {gate['bit_identical']}, "
                 f"shard-bytes ~1/N {gate['shard_bytes_scale']} "
                 f"(tolerance {gate['balance_tolerance']}) -> "
                 f"{'PASS' if gate['pass'] else 'FAIL'}")
    return "\n".join(lines)
