"""The virtual client fleet: O(cohort) lazy materialization of clients.

Before this module, every layer of the simulator eagerly materialized the
whole federation at construction time: the dataset copied per-client arrays
into shards, the device sampler built every :class:`DeviceProfile` and the
server held a ``Dict[int, Client]`` of live objects — O(num_clients) memory
and start-up even though a round only ever touches ``clients_per_round``
clients.  A :class:`ClientFleet` replaces that dictionary with a lazy view:

* **shards** come from the dataset's client mapping — a plain dict for an
  eager federation, or a :class:`~repro.data.dataset.LazyShardMap` whose
  builder is a pure function of ``(seed, client_id)`` for a virtual one;
* **device profiles** come from the device fleet, likewise eager or
  :class:`~repro.systems.devices.VirtualDeviceFleet`;
* **per-client state** lives in a sparse :class:`FleetStateStore` that only
  holds entries for clients that have ever participated; strategies
  initialize a client's state through their ``init_client_state`` hook the
  first time the client is materialized (pure per client, so lazy and eager
  initialization orders agree bit-for-bit).

``fleet[cid]`` (participant access) materializes a :class:`Client` facade
and persists its state; ``fleet.observer(cid)`` materializes a facade with
a *transient* initial state when the client has never participated, so
evaluation sweeps do not grow the store.  With ``lazy=False`` the fleet
reproduces the old behaviour exactly: every client is built at construction
and every state initialized up front.
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC
from typing import Any, Callable, Dict, Iterator, List, Optional

import numpy as np

from ..data.dataset import FederatedDataset, mapping_client_ids
from ..util import BoundedLRU
from ..systems.devices import DeviceFleet
from .client import Client

#: per-client state initializer installed by ``Strategy.setup``
StateInitializer = Callable[[Client], None]

#: default facade-cache bound (matches ``FleetConfig.shard_cache``'s default)
DEFAULT_FACADE_CACHE = 256


class FleetStateStore:
    """Sparse per-client strategy state: entries only for participants.

    The store maps ``client_id -> state dict`` for every client that has
    ever been dispatched.  Because every strategy's per-client state
    initialization is a pure function of the client (seeded by its id), a
    freshly initialized state is indistinguishable from one initialized at
    setup time — which is what lets the fleet skip the O(num_clients)
    initialization sweep entirely.
    """

    def __init__(self) -> None:
        self._states: Dict[int, Dict[str, Any]] = {}
        self._initializer: Optional[StateInitializer] = None

    def bind(self, initializer: Optional[StateInitializer]) -> None:
        """Install the initializer and reset to a fresh run's empty store."""
        self._initializer = initializer
        self._states = {}

    def initialize(self, client: Client) -> None:
        """Run the bound initializer on a freshly materialized facade."""
        if self._initializer is not None:
            self._initializer(client)

    def get(self, client_id: int) -> Optional[Dict[str, Any]]:
        return self._states.get(client_id)

    def adopt(self, client_id: int, state: Dict[str, Any]) -> None:
        """Persist a participating client's state dict (install or overwrite)."""
        self._states[client_id] = state

    @property
    def known_ids(self) -> List[int]:
        """Ids with a persisted state (i.e. clients that participated)."""
        return sorted(self._states)

    def snapshot(self) -> Dict[int, Dict[str, Any]]:
        """The ``{client_id: state}`` entries, id-sorted (checkpointing).

        The returned dict is a fresh container but shares the state dicts;
        the checkpoint layer deep-copies before persisting, so the sparse
        O(participants) shape — never O(fleet) on a lazy fleet — is
        preserved on disk.
        """
        return {cid: self._states[cid] for cid in sorted(self._states)}

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, client_id: int) -> bool:
        return client_id in self._states


class ClientFleet(MappingABC):
    """Lazy ``Mapping[int, Client]`` over a dataset + device fleet.

    ``fleet[cid]`` is *participant* access: the facade's state is persisted
    in the sparse :class:`FleetStateStore` (initializing it first if the
    client was never seen).  ``observer(cid)`` is read-only access for
    evaluation: a never-participating client gets a transient initial state
    that is dropped afterwards, keeping the store O(participants).
    ``values()``/``items()`` iterate with observer semantics.

    With ``lazy=False`` every client is materialized at construction and
    binding a state initializer runs it on all of them immediately — the
    pre-fleet behaviour, retained for bit-for-bit comparison and for callers
    that want eager failure on malformed federations.
    """

    def __init__(self, dataset: FederatedDataset, devices: DeviceFleet, *,
                 lazy: bool = True,
                 cache_size: int = DEFAULT_FACADE_CACHE) -> None:
        if len(devices) != dataset.num_clients:
            raise ValueError(
                f"device fleet has {len(devices)} profiles but the dataset "
                f"has {dataset.num_clients} clients")
        if cache_size <= 0:
            raise ValueError("cache_size must be positive")
        self.dataset = dataset
        self.devices = devices
        self.lazy = lazy
        # each cached facade pins its materialized ClientData alongside
        # the dataset's own shard LRU, so both layers share one configured
        # bound (ServerCore resizes the shard map to match); worst-case
        # resident shards are 2x that bound, typically ~1x (shared ids).
        # The eager fleet keeps every facade alive by design.
        self.cache_size = cache_size
        self.state_store = FleetStateStore()
        self._facades = BoundedLRU(cache_size if lazy
                                   else max(cache_size, len(devices)))
        self._ids: Optional[np.ndarray] = None
        self.facade_builds = 0
        if not lazy:
            for cid in map(int, self.client_ids):
                self._facades.put(cid, Client(cid, dataset.client(cid),
                                              devices[cid]))

    # ----------------------------------------------------------- lifecycle
    def bind_state_initializer(self,
                               initializer: Optional[StateInitializer]) -> None:
        """Install a strategy's per-client state initializer (resets states).

        Called from ``Strategy.setup``.  Eagerly initializes every client in
        the non-lazy fleet (the old per-strategy setup loop); in the lazy
        fleet initialization happens on first materialization instead.
        """
        self.state_store.bind(initializer)
        if self.lazy:
            # drop cached facades along with the store: a facade built for
            # the previous binding carries that run's state dict, and
            # re-adopting it would leak trained state into the fresh run
            self._facades.clear()
        else:
            for cid in self.client_ids:
                client = self._facades.get(cid)
                # a FRESH dict per bind, exactly like the lazy path: keys a
                # previous run's local updates left behind (personal params,
                # patterns) must not leak into the new run — initializers
                # only overwrite their own keys, so reusing the old dict
                # would diverge from a lazily-rebuilt client
                client.state = {}
                self.state_store.adopt(cid, client.state)
                self.state_store.initialize(client)

    # ------------------------------------------------------------- access
    def _build_facade(self, client_id: int,
                      state: Dict[str, Any]) -> Client:
        self.facade_builds += 1
        client_id = int(client_id)  # numpy ids from client_ids arrays
        return Client(client_id, self.dataset.client(client_id),
                      self.devices[client_id], state=state)

    def _facade(self, client_id: int, *, transient: bool = False) -> Client:
        """The cached facade, building (and state-initializing) on demand.

        ``transient=True`` (observer access to a never-participating
        client) returns an *uncached* facade: its freshly initialized state
        really is dropped afterwards, so an evaluation path that mutated
        state could never leak into a later participation through the
        facade cache.
        """
        facade = self._facades.get(client_id)
        if facade is not None:
            return facade
        if not self.lazy:
            raise KeyError(f"no client with id {client_id}")
        stored = self.state_store.get(client_id)
        facade = self._build_facade(client_id,
                                    {} if stored is None else stored)
        if stored is None:
            self.state_store.initialize(facade)
            if transient:
                return facade
        self._facades.put(client_id, facade)
        return facade

    def client(self, client_id: int) -> Client:
        """Participant access: the facade's state joins the sparse store."""
        self._check_id(client_id)
        facade = self._facade(client_id)
        if client_id not in self.state_store:
            self.state_store.adopt(client_id, facade.state)
        return facade

    def observer(self, client_id: int) -> Client:
        """Evaluation access: never grows the state store.

        A participant's stored state is used as-is; an untouched client
        gets a transient, freshly initialized, never-cached state —
        identical in content to what participant access would persist
        (initialization is pure per client) and genuinely discarded after
        use.
        """
        self._check_id(client_id)
        return self._facade(client_id, transient=True)

    def peek_state(self, client_id: int) -> Optional[Dict[str, Any]]:
        """A participant's stored state, or None — never materializes.

        The broadcast evaluation path uses this instead of building
        facades: ``None`` tells the worker to run the (pure per client)
        state initializer on its own locally-built facade, so the server
        touches no shard at all for evaluation fan-out.
        """
        self._check_id(client_id)
        if not self.lazy:
            return self._facades.get(client_id).state
        return self.state_store.get(client_id)

    def update_state(self, client_id: int, state: Dict[str, Any]) -> None:
        """Install the state a worker shipped back for a participant."""
        self._check_id(client_id)
        facade = self._facades.get(client_id)
        if facade is not None:
            facade.state = state
        self.state_store.adopt(client_id, state)

    def _check_id(self, client_id: int) -> None:
        if client_id not in self.dataset.clients:
            raise KeyError(f"no client with id {client_id}")

    # ------------------------------------------------------------- mapping
    def __getitem__(self, client_id: int) -> Client:
        return self.client(client_id)

    def __iter__(self) -> Iterator[int]:
        return iter(self.client_ids)

    def __len__(self) -> int:
        return self.dataset.num_clients

    def __contains__(self, client_id: object) -> bool:
        return client_id in self.dataset.clients

    def values(self):
        return _ObserverView(self, with_ids=False)

    def items(self):
        return _ObserverView(self, with_ids=True)

    @property
    def client_ids(self) -> np.ndarray:
        if self._ids is None:
            self._ids = mapping_client_ids(self.dataset.clients)
        return self._ids


class _ObserverView:
    """Re-iterable ``values()``/``items()`` view with observer semantics.

    Mapping views must survive repeated iteration (a one-shot generator
    silently yields nothing the second time); each pass lazily
    materializes facades via :meth:`ClientFleet.observer`, so iterating is
    an O(num_clients) sweep but holding the view costs nothing.
    """

    def __init__(self, fleet: "ClientFleet", *, with_ids: bool) -> None:
        self._fleet = fleet
        self._with_ids = with_ids

    def __iter__(self):
        for cid in self._fleet.client_ids:
            client = self._fleet.observer(cid)
            yield (cid, client) if self._with_ids else client

    def __len__(self) -> int:
        return len(self._fleet)


def bind_client_state_initializer(clients, initializer: StateInitializer
                                  ) -> None:
    """Route a strategy's per-client initializer to whatever holds clients.

    ``Strategy.setup`` calls this with ``context.clients``: a
    :class:`ClientFleet` binds it (lazy fleets defer per-client work, eager
    fleets run it immediately), while a plain ``{cid: Client}`` dict — the
    shape hand-rolled unit tests build — keeps the historical behaviour of
    initializing every client on the spot.
    """
    binder = getattr(clients, "bind_state_initializer", None)
    if binder is not None:
        binder(initializer)
        return
    for client in clients.values():
        initializer(client)
