"""Regression suite for the shared-memory round broadcast.

The contract under test: with a pool backend, the round-invariant payload
(global parameters, model, strategy template, config) crosses the worker
boundary **at most once per worker per round** — never once per client — and
per-task payloads shrink to ``(client_id, client.state)`` plus two small
handles.  The thread backend is the instrument of choice because its workers
share the server process, so both the submission-side payload witness and
the worker-side materialization counters are observable in-process, while
the payload objects are byte-for-byte what the process backend would ship.
"""

from __future__ import annotations

import pickle

import pytest

from repro.experiments import preset_for, run_method, scaled
from repro.federated.trainer import FederatedTrainer
from repro.baselines import build_strategy
from repro.experiments.presets import build_experiment
from repro.parallel import (ThreadPoolExecutor, broadcast_stats,
                            reset_broadcast_stats)

WORKERS = 2
TINY = dict(num_clients=5, num_rounds=2, clients_per_round=4,
            examples_per_client=20, local_iterations=2, batch_size=8, seed=11)


def tiny_preset():
    return scaled(preset_for("mnist"), **TINY)


def _dumps_size(obj) -> int:
    return len(pickle.dumps(obj, pickle.HIGHEST_PROTOCOL))


class TestBroadcastEquivalence:
    @pytest.mark.parametrize("method", ["fedavg", "fedlps", "ditto"])
    def test_broadcast_matches_legacy_payloads(self, method):
        with ThreadPoolExecutor(WORKERS) as executor:
            legacy = run_method(method, tiny_preset(), executor=executor,
                                use_broadcast=False)
        with ThreadPoolExecutor(WORKERS) as executor:
            broadcast = run_method(method, tiny_preset(), executor=executor,
                                   use_broadcast=True)
        assert legacy.to_dict() == broadcast.to_dict()


class TestBytesPerRound:
    def test_global_params_serialized_once_per_worker_per_round(self):
        preset = tiny_preset()
        dataset, model_builder, config, fleet = build_experiment(preset)
        strategy = build_strategy("fedavg")
        task_payload_sizes = []
        reset_broadcast_stats()
        with ThreadPoolExecutor(WORKERS) as executor:
            executor.payload_witness = \
                lambda item: task_payload_sizes.append(_dumps_size(item))
            trainer = FederatedTrainer(strategy, dataset, model_builder,
                                       config=config, fleet=fleet,
                                       executor=executor)
            trainer.run()
        stats = broadcast_stats()
        params_size = _dumps_size(strategy.global_params)
        rounds = config.num_rounds

        # 1. per-task payloads no longer carry the global parameters: every
        #    submitted payload is a small fraction of the parameter pickle
        assert task_payload_sizes, "witness saw no fan-out payloads"
        assert max(task_payload_sizes) < params_size / 4

        # 2. the parameters are packed server-side exactly once per fan-out
        #    (one local-update + one evaluation broadcast per round), not
        #    once per client; the session broadcast contributes one more
        #    pack for the dataset blocks, once per run
        assert stats["param_packs"] == 2 * rounds + 1

        # 3. worker-side, each broadcast is deserialized at most once per
        #    worker; with clients_per_round > workers this is strictly fewer
        #    materializations than the per-client legacy behaviour.  The
        #    session broadcast adds one materialization per worker for the
        #    whole run.
        publishes = stats["publishes"]
        assert publishes == 2 * rounds + 1  # rounds x (update, eval) + session
        per_client_would_be = rounds * (config.clients_per_round
                                        + dataset.num_clients)
        assert stats["materializations"] <= publishes * WORKERS
        assert stats["materializations"] < per_client_would_be
        # cache hits prove reuse actually happened within workers
        assert stats["materialize_hits"] > 0

    def test_broadcast_shrinks_total_round_traffic(self):
        preset = tiny_preset()

        def total_task_bytes(use_broadcast: bool) -> int:
            sizes = []
            with ThreadPoolExecutor(WORKERS) as executor:
                executor.payload_witness = \
                    lambda item: sizes.append(_dumps_size(item))
                run_method("fedavg", preset, executor=executor,
                           use_broadcast=use_broadcast)
            return sum(sizes)

        legacy = total_task_bytes(use_broadcast=False)
        reset_broadcast_stats()
        broadcast = total_task_bytes(use_broadcast=True)
        pickled_with_broadcast = broadcast + broadcast_stats()["blob_bytes"]
        # the acceptance bar: at least clients_per_round x fewer pickled
        # bytes per round (the same payloads the process backend would ship)
        assert legacy >= preset.clients_per_round * pickled_with_broadcast


class TestReadOnlyFanout:
    """No strategy mutates broadcast-shared arrays during fan-out.

    ``materialize`` hands workers read-only views (see
    tests/parallel/test_broadcast.py for the unit-level guard); this sweep
    proves the property the ROADMAP asked for before enabling it — that no
    registry strategy's local update or evaluation writes into the shared
    global parameters or dataset blocks in place.  Any such write now
    raises ``ValueError: assignment destination is read-only`` and would
    fail the run.
    """

    @pytest.mark.parametrize("lazy_fleet", [True, False],
                             ids=["lazy-fleet", "eager-fleet"])
    def test_every_registry_strategy_runs_on_read_only_views(self,
                                                             lazy_fleet):
        from repro.baselines import available_strategies

        # the eager variant is the one that actually ships dataset arrays
        # as read-only blocks; the lazy variant covers the spec transport
        preset = scaled(tiny_preset(), num_rounds=1, lazy_fleet=lazy_fleet)
        with ThreadPoolExecutor(WORKERS) as executor:
            for method in available_strategies():
                run_method(method, preset, executor=executor,
                           use_broadcast=True)


class TestSessionDatasetBlocks:
    """The dataset rides the session manifest as raw blocks, not the blob."""

    def test_session_blob_excludes_dataset_arrays(self):
        from repro.server.core import dataset_to_blocks

        # the retained eager path: every client's arrays on the manifest
        preset = scaled(tiny_preset(), lazy_fleet=False)
        dataset, model_builder, config, fleet = build_experiment(preset)
        strategy = build_strategy("fedavg")
        with ThreadPoolExecutor(WORKERS) as executor:
            trainer = FederatedTrainer(strategy, dataset, model_builder,
                                       config=config, fleet=fleet,
                                       executor=executor)
            handle = trainer.core._session_handle()
            blocks, _ = dataset_to_blocks(dataset)
            array_bytes = sum(block.nbytes for block in blocks.values())
            try:
                # every dataset array is on the manifest, never pickled
                manifest_keys = {spec.key for spec in handle.manifest}
                assert set(blocks) <= manifest_keys
                assert sum(spec.nbytes for spec in handle.manifest) \
                    >= array_bytes
                # the pickled session blob shrinks to the skeleton + model +
                # fleet/config: a small fraction of the pickled dataset
                assert handle.blob_nbytes < _dumps_size(dataset) / 2
                assert handle.blob_nbytes < array_bytes
            finally:
                trainer.close()

    def test_virtual_session_ships_spec_not_shards(self):
        """The default (virtual) fleet's session payload is O(1)."""
        from repro.data.partition import VirtualFederatedDataset
        from repro.server.core import dataset_to_blocks

        preset = tiny_preset()
        dataset, model_builder, config, fleet = build_experiment(preset)
        assert isinstance(dataset, VirtualFederatedDataset)
        strategy = build_strategy("fedavg")
        with ThreadPoolExecutor(WORKERS) as executor:
            trainer = FederatedTrainer(strategy, dataset, model_builder,
                                       config=config, fleet=fleet,
                                       executor=executor)
            try:
                handle = trainer.core._session_handle()
                blocks, skeleton = dataset_to_blocks(dataset)
                # generated federations ship no dataset arrays at all —
                # the spec rebuilds any client worker-side
                assert blocks == {}
                assert skeleton["kind"] == "virtual"
                assert skeleton["spec"] == dataset.spec
                assert skeleton["overrides"]["name"] == dataset.name
                assert not any(spec.key.startswith("dataset/")
                               for spec in handle.manifest)
                # untouched by publishing: no shard was materialized
                assert dataset.shard_map.materializations == 0
            finally:
                trainer.close()

    def test_dataset_round_trips_through_blocks(self):
        import numpy as np

        from repro.server.core import dataset_from_blocks, dataset_to_blocks

        dataset, _, _, _ = build_experiment(
            scaled(tiny_preset(), lazy_fleet=False))
        blocks, skeleton = dataset_to_blocks(dataset)
        rebuilt = dataset_from_blocks(skeleton, blocks)
        assert rebuilt.name == dataset.name
        assert rebuilt.num_classes == dataset.num_classes
        assert rebuilt.input_shape == tuple(dataset.input_shape)
        assert list(rebuilt.client_ids) == list(dataset.client_ids)
        for cid in dataset.client_ids:
            original, copy = dataset.client(cid), rebuilt.client(cid)
            np.testing.assert_array_equal(original.train.x, copy.train.x)
            np.testing.assert_array_equal(original.train.y, copy.train.y)
            np.testing.assert_array_equal(original.test.x, copy.test.x)
            np.testing.assert_array_equal(original.test.y, copy.test.y)

    def test_virtual_dataset_round_trips_through_blocks(self):
        """Both virtual transports rebuild shards element-identically."""
        import numpy as np

        from repro.data import build_federated_dataset
        from repro.server.core import dataset_from_blocks, dataset_to_blocks

        for partition in ("pathological", "dirichlet"):
            eager = build_federated_dataset(
                "mnist", 5, partition=partition, examples_per_client=20,
                seed=11)
            virtual = build_federated_dataset(
                "mnist", 5, partition=partition, examples_per_client=20,
                seed=11, lazy=True)
            blocks, skeleton = dataset_to_blocks(virtual)
            rebuilt = dataset_from_blocks(skeleton, blocks)
            for cid in eager.client_ids:
                original, copy = eager.client(cid), rebuilt.client(cid)
                np.testing.assert_array_equal(original.train.x, copy.train.x)
                np.testing.assert_array_equal(original.train.y, copy.train.y)
                np.testing.assert_array_equal(original.test.x, copy.test.x)
                np.testing.assert_array_equal(original.test.y, copy.test.y)
