"""Client abstraction: local data shard, device profile and persistent state."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from ..data.dataset import ClientData, DataLoader, Dataset
from ..systems.devices import DeviceProfile


@dataclass
class Client:
    """One simulated edge device participating in the federation.

    ``state`` is a free-form dictionary that personalization strategies use
    to persist client-side information across rounds (importance indicators,
    personal masks, personal head parameters, bandit bookkeeping, ...).
    """

    client_id: int
    data: ClientData
    device: DeviceProfile
    state: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.client_id != self.data.client_id:
            raise ValueError(
                f"client id {self.client_id} does not match data shard id "
                f"{self.data.client_id}")
        if self.client_id != self.device.client_id:
            raise ValueError(
                f"client id {self.client_id} does not match device id "
                f"{self.device.client_id}")

    @property
    def train_data(self) -> Dataset:
        return self.data.train

    @property
    def test_data(self) -> Dataset:
        return self.data.test

    @property
    def num_train_examples(self) -> int:
        return len(self.data.train)

    @property
    def capability(self) -> float:
        """Static capability level ``z_k`` of the client's device."""
        return self.device.capability

    def train_loader(self, batch_size: int, *, seed: int = 0) -> DataLoader:
        return DataLoader(self.data.train, batch_size, shuffle=True,
                          seed=seed * 100_003 + self.client_id)
