"""Sharded-reduction contracts: pure partition, bit-identical aggregation.

The shard assignment must be a pure function of ``(key name, shard
count)`` — no process state, no salt — because the server and every
remote reducer must agree on the partition without coordination.  And
activating any shard count must not change a single output bit of any
aggregation kernel: the sharded wrappers re-run the unmodified kernels
on key-restricted views and reassemble, so equality here is asserted on
exact bytes, not approximate values.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.federated.aggregation import aggregate_residuals, masked_average
from repro.nn.params import weighted_average
from repro.parallel.sharding import (ShardPlan, active_plan, partition_keys,
                                     reset_shard_stats, shard_of_key,
                                     shard_plan, shard_stats, shard_view)

#: frozen assignments of the production manifest keys — a changed digest
#: or modulus would silently repartition live deployments, so the exact
#: values are pinned (pure in (key, count) means these can never drift)
PINNED_ASSIGNMENTS = {
    "conv1.W": {1: 0, 2: 1, 3: 0, 4: 1, 8: 5},
    "conv1.b": {1: 0, 2: 0, 3: 2, 4: 0, 8: 0},
    "fc1.W": {1: 0, 2: 0, 3: 2, 4: 0, 8: 4},
    "fc1.b": {1: 0, 2: 0, 3: 0, 4: 0, 8: 4},
    "fc2.W": {1: 0, 2: 1, 3: 2, 4: 3, 8: 7},
    "fc2.b": {1: 0, 2: 1, 3: 2, 4: 3, 8: 3},
}

_KEY_NAMES = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1, max_size=24)


def _params(rng, keys, shapes=None):
    shapes = shapes or {}
    return {key: rng.standard_normal(shapes.get(key, (3, 4)))
            for key in keys}


KEYS = ["conv1.W", "conv1.b", "fc1.W", "fc1.b", "fc2.W", "fc2.b"]


def _assert_identical(left, right):
    assert list(left) == list(right)  # insertion order included
    for key in left:
        assert left[key].tobytes() == right[key].tobytes(), key
        assert left[key].dtype == right[key].dtype


# --------------------------------------------------------------- partition
class TestShardOfKey:
    def test_pinned_assignments(self):
        for key, expected in PINNED_ASSIGNMENTS.items():
            for count, shard in expected.items():
                assert shard_of_key(key, count) == shard

    @given(key=_KEY_NAMES, shards=st.integers(min_value=1, max_value=64))
    def test_pure_and_in_range(self, key, shards):
        first = shard_of_key(key, shards)
        assert 0 <= first < shards
        assert shard_of_key(key, shards) == first  # no hidden state

    def test_single_shard_owns_everything(self):
        for key in KEYS:
            assert shard_of_key(key, 1) == 0

    def test_rejects_nonpositive_counts(self):
        with pytest.raises(ValueError):
            shard_of_key("fc1.W", 0)

    @given(keys=st.lists(_KEY_NAMES, max_size=32, unique=True),
           shards=st.integers(min_value=1, max_value=8))
    def test_partition_is_an_ordered_cover(self, keys, shards):
        groups = partition_keys(keys, shards)
        assert len(groups) == shards
        flattened = [key for group in groups for key in group]
        assert sorted(flattened) == sorted(keys)  # every key exactly once
        for shard, group in enumerate(groups):
            assert all(shard_of_key(key, shards) == shard for key in group)
            # each group preserves the input order of its keys
            positions = [keys.index(key) for key in group]
            assert positions == sorted(positions)


# -------------------------------------------------------------- plan scope
class TestShardPlanScope:
    def test_installs_and_restores(self):
        assert active_plan() is None
        with shard_plan(3) as plan:
            assert active_plan() is plan
            assert plan.shards == 3
        assert active_plan() is None

    def test_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with shard_plan(2):
                raise RuntimeError("boom")
        assert active_plan() is None

    def test_rejects_nonpositive_counts(self):
        with pytest.raises(ValueError):
            ShardPlan(0)

    def test_stats_accumulate_per_count(self):
        reset_shard_stats()
        rng = np.random.default_rng(0)
        dicts = [_params(rng, KEYS) for _ in range(3)]
        for shards in (2, 2, 4):
            with shard_plan(shards):
                weighted_average(dicts, [1.0, 2.0, 3.0])
        stats = shard_stats()
        assert stats["reductions"] == 3
        assert set(stats["per_shard_bytes"]) == {2, 4}
        assert len(stats["per_shard_bytes"][2]) == 2
        assert len(stats["per_shard_bytes"][4]) == 4
        assert sum(stats["per_shard_bytes"][2]) \
            + sum(stats["per_shard_bytes"][4]) == stats["reduce_bytes"]
        reset_shard_stats()
        assert shard_stats()["reductions"] == 0

    def test_charge_is_result_bytes_times_updates(self):
        rng = np.random.default_rng(1)
        dicts = [_params(rng, KEYS) for _ in range(5)]
        expected = sum(value.nbytes for value in dicts[0].values()) * 5
        with shard_plan(3) as plan:
            weighted_average(dicts, [1.0] * 5)
        assert sum(plan.per_shard_bytes) == expected


# ------------------------------------------------------------ bit identity
class TestShardedKernelsAreBitIdentical:
    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 7])
    def test_weighted_average(self, shards):
        rng = np.random.default_rng(2)
        dicts = [_params(rng, KEYS) for _ in range(4)]
        weights = [0.5, 1.5, 2.0, 0.25]
        reference = weighted_average(dicts, weights)
        with shard_plan(shards):
            sharded = weighted_average(dicts, weights)
        _assert_identical(sharded, reference)

    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 7])
    def test_aggregate_residuals(self, shards):
        rng = np.random.default_rng(3)
        global_params = _params(rng, KEYS)
        residuals = [_params(rng, KEYS) for _ in range(4)]
        weights = [1.0, 2.0, 3.0, 4.0]
        reference = aggregate_residuals(global_params, residuals, weights)
        with shard_plan(shards):
            sharded = aggregate_residuals(global_params, residuals, weights)
        _assert_identical(sharded, reference)

    @pytest.mark.parametrize("shards", [1, 2, 3, 4, 7])
    def test_masked_average(self, shards):
        rng = np.random.default_rng(4)
        global_params = _params(rng, KEYS)
        updates = [_params(rng, KEYS) for _ in range(4)]
        masks = [{key: (rng.random(value.shape) < 0.5).astype(np.float64)
                  for key, value in global_params.items()}
                 for _ in range(4)]
        weights = [1.0, 0.5, 2.0, 1.5]
        reference = masked_average(global_params, updates, masks, weights)
        with shard_plan(shards):
            sharded = masked_average(global_params, updates, masks, weights)
        _assert_identical(sharded, reference)

    def test_masked_average_without_weights(self):
        rng = np.random.default_rng(5)
        global_params = _params(rng, KEYS)
        updates = [_params(rng, KEYS) for _ in range(3)]
        masks = [{key: np.ones_like(value)
                  for key, value in global_params.items()}
                 for _ in range(3)]
        reference = masked_average(global_params, updates, masks)
        with shard_plan(3):
            sharded = masked_average(global_params, updates, masks)
        _assert_identical(sharded, reference)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000),
           shards=st.integers(min_value=1, max_value=9),
           num_updates=st.integers(min_value=1, max_value=5))
    def test_weighted_average_property(self, seed, shards, num_updates):
        rng = np.random.default_rng(seed)
        keys = [f"k{index}" for index in range(rng.integers(1, 9))]
        dicts = [{key: rng.standard_normal((2, 3)) for key in keys}
                 for _ in range(num_updates)]
        weights = list(rng.random(num_updates) + 0.1)
        reference = weighted_average(dicts, weights)
        with shard_plan(shards):
            sharded = weighted_average(dicts, weights)
        _assert_identical(sharded, reference)

    def test_error_behavior_delegates_to_base_kernel(self):
        with shard_plan(3):
            with pytest.raises(ValueError):
                weighted_average([], [])
            with pytest.raises(ValueError):
                weighted_average([{"w": np.ones(2)}], [0.0])

    def test_plan_suspended_inside_base_kernel(self):
        # the wrappers must not re-dispatch recursively: a sharded call
        # that completes proves suspension, and the plan is restored after
        rng = np.random.default_rng(6)
        dicts = [_params(rng, KEYS) for _ in range(2)]
        with shard_plan(2) as plan:
            weighted_average(dicts, [1.0, 1.0])
            assert active_plan() is plan


# ------------------------------------------------------------- shard views
class TestShardViews:
    def test_plain_view_restricts_and_orders(self):
        rng = np.random.default_rng(7)
        base = _params(rng, KEYS)
        view = shard_view(base, ["fc1.W", "conv1.b"])
        assert list(view) == ["fc1.W", "conv1.b"]
        assert len(view) == 2
        assert view["fc1.W"] is base["fc1.W"]
        with pytest.raises(KeyError):
            view["fc2.W"]

    def test_indexed_view_forwards_slices(self):
        class Decoded(dict):
            def slices(self, key):
                return ("slices-of", key)

        base = Decoded(a=np.ones(2), b=np.zeros(2))
        view = shard_view(base, ["a"])
        assert hasattr(view, "slices")
        assert view.slices("a") == ("slices-of", "a")
        plain = shard_view(dict(base), ["a"])
        assert not hasattr(plain, "slices")


# ------------------------------------------------- end-to-end (serial run)
class TestServerIntegration:
    def test_reducer_shards_leave_history_bit_identical(self):
        from repro.experiments import preset_for, run_method, scaled

        overrides = dict(num_clients=4, num_rounds=2, clients_per_round=2,
                         examples_per_client=20, local_iterations=2,
                         batch_size=8, seed=11)
        base = scaled(preset_for("mnist"), **overrides)
        reference = run_method("fedavg", base).to_dict()
        for shards in (2, 5):
            history = run_method(
                "fedavg", scaled(base, reducer_shards=shards)).to_dict()
            assert history == reference, f"shards={shards} drifted"

    def test_config_rejects_nonpositive_shards(self):
        from repro.federated import FederatedConfig

        with pytest.raises(ValueError, match="reducer_shards"):
            FederatedConfig(reducer_shards=0)
