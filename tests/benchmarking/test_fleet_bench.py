"""The fleet-scale benchmark harness (BENCH_fleet.json)."""

from __future__ import annotations

import json

from repro.benchmarking import (format_fleet_report, measure_construction,
                                run_fleet_bench)
from repro.cli import main


class TestFleetBench:
    def test_report_schema_and_gate(self, tmp_path):
        output = tmp_path / "BENCH_fleet.json"
        report = run_fleet_bench(scale=0.01, output=str(output))
        assert report["gate"]["pass"], report["gate"]
        ladder = report["ladder"]
        assert len(ladder) == 3
        for cell in ladder.values():
            assert cell["lazy"] is True
            assert cell["seconds_to_first_dispatch"] >= 0.0
            # materialization scales with the cohort, not the fleet
            assert cell["shard_materializations"] <= max(cell["cohort_size"],
                                                         32)
        smoke = report["smoke"]
        assert smoke["rounds_completed"] == smoke["rounds"] == 2
        persisted = json.loads(output.read_text())
        assert persisted["gate"]["pass"] is True
        # the rendered table mentions the gate verdict
        assert "PASS" in format_fleet_report(report)

    def test_eager_reference_materializes_everything(self):
        cell = measure_construction(24, lazy=False)
        assert cell["lazy"] is False
        assert cell["shard_materializations"] == 24

    def test_cli_fleet_scale_axis(self, tmp_path, capsys):
        output = tmp_path / "BENCH_fleet.json"
        code = main(["bench", "--fleet-scale", "0.01",
                     "--fleet-output", str(output), "--check"])
        assert code == 0
        assert output.exists()
        out = capsys.readouterr().out
        assert "fleet" in out and "smoke:" in out
