"""Recurrent layers (vanilla RNN and LSTM) with full back-propagation
through time, implemented in numpy.

Both layers consume input of shape ``(N, T, D)`` and return the full hidden
sequence ``(N, T, H)``.  Their sparsifiable units are the hidden units.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from . import initializers
from .activations import sigmoid
from .base import Array, Layer, ParamDict, as_float


class RNN(Layer):
    """Single-layer vanilla (tanh) recurrent network."""

    def __init__(self, input_dim: int, hidden_dim: int, *, name: str = "rnn",
                 sparsifiable: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__(name)
        if input_dim <= 0 or hidden_dim <= 0:
            raise ValueError("input_dim and hidden_dim must be positive")
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.sparsifiable = sparsifiable
        rng = rng or np.random.default_rng(0)
        self.params = {
            "Wx": initializers.glorot_uniform(rng, (input_dim, hidden_dim),
                                              input_dim, hidden_dim),
            "Wh": initializers.orthogonal(rng, (hidden_dim, hidden_dim)),
            "b": initializers.zeros((hidden_dim,)),
        }
        self.zero_grad()
        self._x: Array | None = None
        self._h: Array | None = None
        self._pre_gate: Array | None = None

    def forward(self, x: Array, *, train: bool = True) -> Array:
        x = as_float(x)
        if x.ndim != 3 or x.shape[2] != self.input_dim:
            raise ValueError(
                f"{self.name}: expected input (N, T, {self.input_dim}), got {x.shape}")
        n, t, _ = x.shape
        h = np.zeros((n, t + 1, self.hidden_dim), dtype=np.float64)
        for step in range(t):
            pre = (x[:, step] @ self.params["Wx"] + h[:, step] @ self.params["Wh"]
                   + self.params["b"])
            h[:, step + 1] = np.tanh(pre)
        self._x = x
        self._h = h
        self._pre_gate = h[:, 1:]
        return self._apply_unit_gate(self._pre_gate, unit_axis=2)

    def backward(self, grad_out: Array) -> Array:
        if self._x is None or self._h is None or self._pre_gate is None:
            raise RuntimeError("backward called before forward")
        grad_seq = self._accumulate_gate_grad(grad_out, self._pre_gate, unit_axis=2)
        n, t, _ = self._x.shape
        grad_x = np.zeros_like(self._x)
        grad_h_next = np.zeros((n, self.hidden_dim), dtype=np.float64)
        for step in reversed(range(t)):
            h_t = self._h[:, step + 1]
            grad_h = grad_seq[:, step] + grad_h_next
            grad_pre = grad_h * (1.0 - h_t ** 2)
            self.grads["Wx"] += self._x[:, step].T @ grad_pre
            self.grads["Wh"] += self._h[:, step].T @ grad_pre
            self.grads["b"] += grad_pre.sum(axis=0)
            grad_x[:, step] = grad_pre @ self.params["Wx"].T
            grad_h_next = grad_pre @ self.params["Wh"].T
        return grad_x

    @property
    def n_units(self) -> int:
        return self.hidden_dim if self.sparsifiable else 0

    def expand_unit_mask(self, unit_mask: Array) -> ParamDict:
        unit_mask = np.asarray(unit_mask, dtype=np.float64)
        if unit_mask.shape != (self.hidden_dim,):
            raise ValueError(
                f"{self.name}: unit mask must have shape ({self.hidden_dim},)")
        wh_mask = np.outer(unit_mask, unit_mask)
        return {
            "Wx": np.broadcast_to(unit_mask, (self.input_dim, self.hidden_dim)).copy(),
            "Wh": wh_mask,
            "b": unit_mask.copy(),
        }

    def unit_weight_magnitude(self) -> Array:
        return (np.sum(np.abs(self.params["Wx"]), axis=0)
                + np.sum(np.abs(self.params["Wh"]), axis=0)
                + np.abs(self.params["b"]))

    def flops_per_example(self, input_shape: Tuple[int, ...]) -> Tuple[int, Tuple[int, ...]]:
        seq_len, _ = input_shape
        per_step = 2 * self.input_dim * self.hidden_dim + 2 * self.hidden_dim ** 2
        return per_step * seq_len, (seq_len, self.hidden_dim)


class LSTM(Layer):
    """Single-layer LSTM with gates ordered ``(input, forget, cell, output)``."""

    def __init__(self, input_dim: int, hidden_dim: int, *, name: str = "lstm",
                 sparsifiable: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__(name)
        if input_dim <= 0 or hidden_dim <= 0:
            raise ValueError("input_dim and hidden_dim must be positive")
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.sparsifiable = sparsifiable
        rng = rng or np.random.default_rng(0)
        self.params = {
            "Wx": initializers.glorot_uniform(rng, (input_dim, 4 * hidden_dim),
                                              input_dim, 4 * hidden_dim),
            "Wh": initializers.glorot_uniform(rng, (hidden_dim, 4 * hidden_dim),
                                              hidden_dim, 4 * hidden_dim),
            "b": initializers.zeros((4 * hidden_dim,)),
        }
        # bias the forget gate towards remembering, the usual LSTM trick
        self.params["b"][hidden_dim:2 * hidden_dim] = 1.0
        self.zero_grad()
        self._cache: List[Tuple[Array, ...]] | None = None
        self._x: Array | None = None
        self._pre_gate: Array | None = None

    def forward(self, x: Array, *, train: bool = True) -> Array:
        x = as_float(x)
        if x.ndim != 3 or x.shape[2] != self.input_dim:
            raise ValueError(
                f"{self.name}: expected input (N, T, {self.input_dim}), got {x.shape}")
        n, t, _ = x.shape
        hidden = self.hidden_dim
        h_prev = np.zeros((n, hidden), dtype=np.float64)
        c_prev = np.zeros((n, hidden), dtype=np.float64)
        outputs = np.zeros((n, t, hidden), dtype=np.float64)
        cache: List[Tuple[Array, ...]] = []
        for step in range(t):
            pre = (x[:, step] @ self.params["Wx"] + h_prev @ self.params["Wh"]
                   + self.params["b"])
            i_gate = sigmoid(pre[:, :hidden])
            f_gate = sigmoid(pre[:, hidden:2 * hidden])
            g_gate = np.tanh(pre[:, 2 * hidden:3 * hidden])
            o_gate = sigmoid(pre[:, 3 * hidden:])
            c_t = f_gate * c_prev + i_gate * g_gate
            tanh_c = np.tanh(c_t)
            h_t = o_gate * tanh_c
            cache.append((h_prev, c_prev, i_gate, f_gate, g_gate, o_gate, c_t, tanh_c))
            outputs[:, step] = h_t
            h_prev, c_prev = h_t, c_t
        self._x = x
        self._cache = cache
        self._pre_gate = outputs
        return self._apply_unit_gate(outputs, unit_axis=2)

    def backward(self, grad_out: Array) -> Array:
        if self._x is None or self._cache is None or self._pre_gate is None:
            raise RuntimeError("backward called before forward")
        grad_seq = self._accumulate_gate_grad(grad_out, self._pre_gate, unit_axis=2)
        n, t, _ = self._x.shape
        hidden = self.hidden_dim
        grad_x = np.zeros_like(self._x)
        grad_h_next = np.zeros((n, hidden), dtype=np.float64)
        grad_c_next = np.zeros((n, hidden), dtype=np.float64)
        for step in reversed(range(t)):
            h_prev, c_prev, i_gate, f_gate, g_gate, o_gate, c_t, tanh_c = \
                self._cache[step]
            grad_h = grad_seq[:, step] + grad_h_next
            grad_o = grad_h * tanh_c
            grad_c = grad_h * o_gate * (1.0 - tanh_c ** 2) + grad_c_next
            grad_i = grad_c * g_gate
            grad_f = grad_c * c_prev
            grad_g = grad_c * i_gate
            grad_c_next = grad_c * f_gate
            grad_pre = np.concatenate([
                grad_i * i_gate * (1.0 - i_gate),
                grad_f * f_gate * (1.0 - f_gate),
                grad_g * (1.0 - g_gate ** 2),
                grad_o * o_gate * (1.0 - o_gate),
            ], axis=1)
            self.grads["Wx"] += self._x[:, step].T @ grad_pre
            self.grads["Wh"] += h_prev.T @ grad_pre
            self.grads["b"] += grad_pre.sum(axis=0)
            grad_x[:, step] = grad_pre @ self.params["Wx"].T
            grad_h_next = grad_pre @ self.params["Wh"].T
        return grad_x

    @property
    def n_units(self) -> int:
        return self.hidden_dim if self.sparsifiable else 0

    def expand_unit_mask(self, unit_mask: Array) -> ParamDict:
        unit_mask = np.asarray(unit_mask, dtype=np.float64)
        if unit_mask.shape != (self.hidden_dim,):
            raise ValueError(
                f"{self.name}: unit mask must have shape ({self.hidden_dim},)")
        col_mask = np.tile(unit_mask, 4)
        wx_mask = np.broadcast_to(col_mask, (self.input_dim, 4 * self.hidden_dim)).copy()
        wh_mask = np.broadcast_to(col_mask, (self.hidden_dim, 4 * self.hidden_dim)).copy()
        wh_mask = wh_mask * unit_mask[:, None]
        return {"Wx": wx_mask, "Wh": wh_mask, "b": col_mask.copy()}

    def unit_weight_magnitude(self) -> Array:
        hidden = self.hidden_dim
        magnitude = np.zeros(hidden, dtype=np.float64)
        for block in range(4):
            cols = slice(block * hidden, (block + 1) * hidden)
            magnitude += np.sum(np.abs(self.params["Wx"][:, cols]), axis=0)
            magnitude += np.sum(np.abs(self.params["Wh"][:, cols]), axis=0)
            magnitude += np.abs(self.params["b"][cols])
        return magnitude

    def flops_per_example(self, input_shape: Tuple[int, ...]) -> Tuple[int, Tuple[int, ...]]:
        seq_len, _ = input_shape
        per_step = (2 * self.input_dim * 4 * self.hidden_dim
                    + 2 * self.hidden_dim * 4 * self.hidden_dim)
        return per_step * seq_len, (seq_len, self.hidden_dim)


class LastTimestep(Layer):
    """Select the final timestep of a sequence output ``(N, T, H) -> (N, H)``."""

    trainable = False

    def __init__(self, name: str = "last") -> None:
        super().__init__(name)
        self._shape: Tuple[int, ...] | None = None

    def forward(self, x: Array, *, train: bool = True) -> Array:
        x = as_float(x)
        self._shape = x.shape
        return x[:, -1]

    def backward(self, grad_out: Array) -> Array:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        grad = np.zeros(self._shape, dtype=np.float64)
        grad[:, -1] = grad_out
        return grad

    def flops_per_example(self, input_shape: Tuple[int, ...]) -> Tuple[int, Tuple[int, ...]]:
        _, hidden = input_shape
        return 0, (hidden,)
