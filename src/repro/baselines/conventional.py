"""Conventional (dense, same-model) federated learning baselines.

* FedAvg and FedProx train the identical dense model on every client.
* Oort and REFL keep the dense model but select participants intelligently:
  Oort by statistical utility with exploration, REFL by resource-aware
  prioritization of rarely-seen clients with capability-scaled local work.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..federated.batched import train_cohort_batched
from ..federated.client import Client
from ..federated.local import train_locally
from ..federated.strategy import ClientUpdate, Strategy, StrategyContext
from ..nn.batched import batchable_model


class FedAvg(Strategy):
    """McMahan et al.'s FedAvg: the base strategy under its canonical name."""

    name = "fedavg"


class FedProx(Strategy):
    """FedAvg plus a proximal term that limits local drift from the global model."""

    name = "fedprox"

    def __init__(self, mu: float = 0.01) -> None:
        super().__init__()
        if mu < 0:
            raise ValueError("mu must be non-negative")
        self.mu = mu

    def local_update(self, round_index: int, client: Client) -> ClientUpdate:
        context = self._require_context()
        config = context.config
        result = train_locally(
            context.model, self.global_params, client.train_data,
            iterations=config.local_iterations, batch_size=config.batch_size,
            learning_rate=config.learning_rate, momentum=config.momentum,
            clip_norm=config.clip_norm, prox_mu=self.mu,
            prox_center=self.global_params,
            rng=self._client_rng(round_index, client.client_id))
        flops, upload, download = self._round_footprint(client)
        return ClientUpdate(
            client_id=client.client_id, params=result.params,
            num_examples=client.num_train_examples,
            train_accuracy=result.train_accuracy, train_loss=result.train_loss,
            flops=flops, upload_bytes=upload, download_bytes=download)

    def cohort_batchable(self) -> bool:
        # the proximal term broadcasts along the client axis, so FedProx
        # batches whenever the model has batched kernels
        context = self._require_context()
        return batchable_model(context.model)

    def local_update_cohort(self, round_index: int,
                            clients: List[Client]
                            ) -> Optional[List[ClientUpdate]]:
        context = self._require_context()
        config = context.config
        results = train_cohort_batched(
            context.model,
            [self.global_params] * len(clients),
            [client.train_data for client in clients],
            iterations=config.local_iterations, batch_size=config.batch_size,
            learning_rate=config.learning_rate, momentum=config.momentum,
            clip_norm=config.clip_norm, prox_mu=self.mu,
            prox_center=self.global_params,
            rngs=[self._client_rng(round_index, client.client_id)
                  for client in clients])
        updates = []
        for client, result in zip(clients, results):
            flops, upload, download = self._round_footprint(client)
            updates.append(ClientUpdate(
                client_id=client.client_id, params=result.params,
                num_examples=client.num_train_examples,
                train_accuracy=result.train_accuracy,
                train_loss=result.train_loss,
                flops=flops, upload_bytes=upload, download_bytes=download))
        return updates


class Oort(Strategy):
    """Guided participant selection by statistical utility (Lai et al., OSDI'21).

    A client's utility combines its most recent training loss (statistical
    utility) with a preference for fast devices; an epsilon fraction of slots
    is reserved for exploring clients that were never observed.
    """

    name = "oort"

    def __init__(self, exploration_fraction: float = 0.3,
                 speed_weight: float = 0.5) -> None:
        super().__init__()
        if not 0.0 <= exploration_fraction <= 1.0:
            raise ValueError("exploration_fraction must be in [0, 1]")
        self.exploration_fraction = exploration_fraction
        self.speed_weight = speed_weight
        self._last_loss: Dict[int, float] = {}
        self._num_examples: Dict[int, int] = {}

    def setup(self, context: StrategyContext) -> None:
        super().setup(context)
        self._last_loss = {}
        self._num_examples = {}

    def select_clients(self, round_index: int,
                       count: Optional[int] = None) -> List[int]:
        context = self._require_context()
        ids = context.client_ids
        if count is None:
            count = context.config.clients_per_round
        count = min(count, len(ids))
        explored = [int(cid) for cid in ids if cid in self._last_loss]
        unexplored = [int(cid) for cid in ids if cid not in self._last_loss]
        n_explore = min(len(unexplored),
                        max(1, int(round(self.exploration_fraction * count)))
                        if unexplored else 0)
        n_exploit = count - n_explore
        chosen: List[int] = []
        if n_explore > 0:
            chosen.extend(int(cid) for cid in context.rng.choice(
                unexplored, size=n_explore, replace=False))
        if n_exploit > 0 and explored:
            scores = {cid: self._utility(context, cid) for cid in explored}
            ranked = sorted(explored, key=lambda cid: scores[cid], reverse=True)
            chosen.extend(ranked[:n_exploit])
        # pad with random clients if we still have open slots
        remaining = [int(cid) for cid in ids if cid not in chosen]
        while len(chosen) < count and remaining:
            pick = int(context.rng.choice(remaining))
            remaining.remove(pick)
            chosen.append(pick)
        return sorted(chosen)

    def _utility(self, context: StrategyContext, client_id: int) -> float:
        # explored clients' sizes were recorded at post_round (identical to
        # num_train_examples) and speed comes from the device fleet, so
        # scoring never materializes a client's data shard — selection on a
        # lazy fleet stays O(cohort) in shard builds
        statistical = self._last_loss.get(client_id, 0.0) * np.sqrt(
            self._num_examples.get(client_id, 0))
        speed = context.fleet[client_id].capability
        return float(statistical + self.speed_weight * speed)

    def post_round(self, round_index, updates, costs) -> None:
        for update in updates:
            self._last_loss[update.client_id] = update.train_loss
            self._num_examples[update.client_id] = update.num_examples


class REFL(Strategy):
    """Resource-efficient FL: prioritize stale clients, scale work to capability.

    Clients that have not participated recently are preferred (diversity), and
    each selected client runs a number of local iterations proportional to its
    capability so that weak devices are not overloaded (this is what produces
    REFL's FLOP savings in Table I).  Updates from weak clients are therefore
    "partially stale" and are discounted at aggregation time.
    """

    name = "refl"

    def __init__(self, staleness_decay: float = 0.7) -> None:
        super().__init__()
        if not 0.0 < staleness_decay <= 1.0:
            raise ValueError("staleness_decay must be in (0, 1]")
        self.staleness_decay = staleness_decay
        self._last_selected: Dict[int, int] = {}

    def setup(self, context: StrategyContext) -> None:
        super().setup(context)
        # sparse: only clients that participated have an entry; everyone
        # else reads the -1 default, identical to the old dense pre-fill
        self._last_selected = {}

    def select_clients(self, round_index: int,
                       count: Optional[int] = None) -> List[int]:
        context = self._require_context()
        ids = context.client_ids
        if count is None:
            count = context.config.clients_per_round
        count = min(count, len(ids))
        staleness = {int(cid): round_index - self._last_selected.get(int(cid), -1)
                     for cid in ids}
        jitter = {int(cid): float(context.rng.random()) for cid in ids}
        ranked = sorted(staleness,
                        key=lambda cid: (staleness[cid], jitter[cid]),
                        reverse=True)
        return sorted(ranked[:count])

    def local_update(self, round_index: int, client: Client) -> ClientUpdate:
        context = self._require_context()
        config = context.config
        iterations = max(1, int(round(config.local_iterations * client.capability)))
        result = train_locally(
            context.model, self.global_params, client.train_data,
            iterations=iterations, batch_size=config.batch_size,
            learning_rate=config.learning_rate, momentum=config.momentum,
            clip_norm=config.clip_norm,
            rng=self._client_rng(round_index, client.client_id))
        scale = iterations / config.local_iterations
        flops, upload, download = self._round_footprint(client)
        return ClientUpdate(
            client_id=client.client_id, params=result.params,
            num_examples=client.num_train_examples,
            train_accuracy=result.train_accuracy, train_loss=result.train_loss,
            flops=flops * scale, upload_bytes=upload, download_bytes=download,
            extras={"iterations": float(iterations)})

    def aggregate(self, round_index: int, updates: List[ClientUpdate]) -> None:
        if not updates:
            return
        config = self._require_context().config
        weights = []
        for update in updates:
            shortfall = 1.0 - update.extras.get(
                "iterations", config.local_iterations) / config.local_iterations
            weights.append(update.num_examples
                           * (self.staleness_decay ** (shortfall * 2.0)))
        from ..federated.aggregation import fedavg
        self.global_params = fedavg([u.params for u in updates], weights)

    def post_round(self, round_index, updates, costs) -> None:
        for update in updates:
            self._last_selected[update.client_id] = round_index
