"""Reproduction of the paper's tables.

* :func:`table1_accuracy_flops` — Table I: test accuracy, total training
  FLOPs and time-to-accuracy of every method on the requested datasets.
* :func:`table2_ablation` — Table II: FLST / RCR-Fix / P-UCBV-Fix / RCR-Dyn /
  P-UCBV-Dyn accuracy and FLOPs under static and dynamic device resources.
* :func:`scenario_table` — methods × system-heterogeneity scenarios:
  accuracy, simulated wall-clock, time-to-accuracy and drop counts (the
  columns that show which strategy wins once clients can miss deadlines).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..baselines import TABLE1_METHODS, ablations, build_strategy
from ..parallel import Executor
from ..systems import TrainingHistory
from .cache import ResultCache
from .presets import ExperimentPreset, preset_for, scaled
from .runner import run_jobs, run_method, run_scenario_sweep, summarize


def table1_accuracy_flops(datasets: Iterable[str] = ("mnist",),
                          methods: Optional[Iterable[str]] = None,
                          overrides: Optional[dict] = None, *,
                          executor: Optional[Executor] = None,
                          cache: Optional[ResultCache] = None
                          ) -> List[Dict[str, object]]:
    """Rows of Table I: one row per (method, dataset).

    ``overrides`` shrinks or enlarges the presets (rounds, clients, ...), which
    is how the benchmark harness keeps the full 21-method sweep tractable.
    With an ``executor`` the grid's runs dispatch as parallel jobs; a
    ``cache`` makes repeated table builds incremental.
    """
    methods = list(methods) if methods is not None else list(TABLE1_METHODS)
    overrides = overrides or {}
    grid = [(method, dataset) for dataset in datasets for method in methods]
    specs = [(method, scaled(preset_for(dataset), **overrides), None)
             for method, dataset in grid]
    histories = run_jobs(specs, executor=executor, cache=cache)
    return [{
        "method": method,
        "dataset": dataset,
        "aggregation": spec[1].aggregation,
        "accuracy": summary["accuracy"],
        "total_flops": summary["total_flops"],
        "total_time_seconds": summary["total_time_seconds"],
        "sim_time_seconds": summary["sim_time_seconds"],
        "time_to_accuracy_seconds": summary["time_to_accuracy_seconds"],
        "mean_staleness": summary["mean_staleness"],
    } for (method, dataset), spec, summary in
        ((pair, spec, summarize(history))
         for pair, spec, history in zip(grid, specs, histories))]


def table2_ablation(dataset: str = "mnist",
                    overrides: Optional[dict] = None,
                    fixed_ratio: float = 0.5) -> List[Dict[str, object]]:
    """Rows of Table II: the FedLPS ablation grid.

    * FLST — learnable pattern, fixed ratio, static resources.
    * RCR-Fix / P-UCBV-Fix — rigid vs adaptive ratios, static resources.
    * RCR-Dyn / P-UCBV-Dyn — the same under dynamically fluctuating resources.
    """
    overrides = overrides or {}
    static = scaled(preset_for(dataset), dynamic_resources=False, **overrides)
    dynamic = scaled(preset_for(dataset), dynamic_resources=True, **overrides)
    variants = [
        ("FLST", static, lambda: ablations.flst(fixed_ratio=fixed_ratio)),
        ("RCR-Fix", static, ablations.rcr),
        ("P-UCBV-Fix", static, ablations.pucbv),
        ("RCR-Dyn", dynamic, ablations.rcr),
        ("P-UCBV-Dyn", dynamic, ablations.pucbv),
    ]
    rows: List[Dict[str, object]] = []
    for label, preset, factory in variants:
        history = run_method(label, preset, strategy=factory())
        summary = summarize(history)
        rows.append({
            "variant": label,
            "dataset": dataset,
            "accuracy": summary["accuracy"],
            "total_flops": summary["total_flops"],
            "total_time_seconds": summary["total_time_seconds"],
        })
    return rows


def scenario_table(dataset: str = "mnist",
                   methods: Iterable[str] = ("fedavg", "fedlps"),
                   scenarios: Iterable[str] = ("ideal", "flaky",
                                               "deadline-tight", "trace"),
                   aggregations: Iterable[str] = ("sync",),
                   overrides: Optional[dict] = None, *,
                   executor: Optional[Executor] = None,
                   cache: Optional[ResultCache] = None
                   ) -> List[Dict[str, object]]:
    """Methods × scenarios × aggregations on one dataset.

    Alongside final accuracy, the rows carry the quantities the scenario
    engine and the event-driven server core exist to measure: simulated
    wall-clock (deadline waits included), time-to-accuracy, client slots
    lost to unavailability or straggler drops, and the mean staleness of the
    aggregated updates.  Passing ``aggregations=("sync", "fedasync")`` turns
    the table into the sync-vs-async comparison: because
    ``time_to_accuracy_seconds`` targets each run's *own* best accuracy (an
    uneven bar between modes), the rows also carry
    ``time_to_sync_target_seconds`` — sim-time until 90% of the **sync**
    run's best accuracy on the same (method, scenario) cell, the
    like-for-like number — ``None`` when the target is never reached or no
    sync run is in the grid.
    """
    histories = run_scenario_sweep(methods, [dataset], scenarios,
                                   aggregations, overrides=overrides,
                                   executor=executor, cache=cache)
    sync_targets = {
        key[:3]: 0.9 * history.best_accuracy()
        for key, history in histories.items() if key[3] == "sync"}
    rows = []
    for key, history in histories.items():
        method, grid_dataset, scenario, aggregation = key
        summary = summarize(history)
        target = sync_targets.get(key[:3])
        rows.append({
            "method": method,
            "scenario": scenario,
            "aggregation": aggregation,
            "dataset": grid_dataset,
            "accuracy": summary["accuracy"],
            "sim_time_seconds": summary["sim_time_seconds"],
            "time_to_accuracy_seconds": summary["time_to_accuracy_seconds"],
            "time_to_sync_target_seconds":
                (history.sim_time_to_accuracy(target)
                 if target is not None else None),
            "dropped_clients": summary["dropped_clients"],
            "straggler_drops": summary["straggler_drops"],
            "mean_staleness": summary["mean_staleness"],
        })
    return rows


def histories_to_rows(histories: Dict[str, TrainingHistory]
                      ) -> List[Dict[str, object]]:
    """Summarize a ``{method: history}`` mapping into table rows."""
    rows = []
    for method, history in histories.items():
        summary = summarize(history)
        rows.append({"method": method, "dataset": history.dataset, **summary})
    return rows
