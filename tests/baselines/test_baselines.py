"""Tests for the baseline strategies and the registry."""

import numpy as np
import pytest

from repro.baselines import (STRATEGY_REGISTRY, TABLE1_METHODS, Ditto, FedPer,
                             FedRep, FedSpa, Hermes, LotteryFL, Oort, PerFedAvg,
                             PruneFL, REFL, ablations, available_strategies,
                             body_keys, build_strategy, head_keys)
from repro.core import FedLPS
from repro.federated import FederatedConfig, FederatedTrainer, run_federated
from repro.models import build_model_for_dataset


def builder():
    return build_model_for_dataset("mnist", seed=0)


def make_trainer(strategy, dataset, config):
    return FederatedTrainer(strategy, dataset, builder, config=config)


class TestRegistry:
    def test_table1_methods_are_registered(self):
        assert set(TABLE1_METHODS) <= set(STRATEGY_REGISTRY)
        assert len(TABLE1_METHODS) == 21

    def test_build_strategy_unknown_name(self):
        with pytest.raises(ValueError):
            build_strategy("not-a-method")

    def test_available_strategies_sorted(self):
        names = available_strategies()
        assert names == sorted(names)

    @pytest.mark.parametrize("name", sorted(STRATEGY_REGISTRY))
    def test_every_registered_strategy_instantiates(self, name):
        strategy = build_strategy(name)
        assert strategy.name

    def test_head_and_body_keys_partition_parameters(self):
        params = builder().get_parameters()
        heads = head_keys(params)
        bodies = body_keys(params)
        assert set(heads) | set(bodies) == set(params)
        assert not set(heads) & set(bodies)
        assert all(key.startswith("head.") for key in heads)


@pytest.mark.parametrize("name", sorted(STRATEGY_REGISTRY))
def test_every_strategy_completes_a_short_run(name, small_fed_dataset):
    config = FederatedConfig(num_rounds=2, clients_per_round=2,
                             local_iterations=2, batch_size=8, seed=0)
    history = run_federated(build_strategy(name), small_fed_dataset, builder,
                            config=config)
    assert len(history) == 2
    assert history.total_flops > 0
    assert all(0.0 <= acc <= 1.0 for acc in history.accuracies)


class TestSelectionStrategies:
    def test_oort_prefers_high_loss_clients(self, small_fed_dataset, tiny_config):
        trainer = make_trainer(Oort(exploration_fraction=0.0),
                               small_fed_dataset, tiny_config)
        strategy = trainer.strategy
        strategy.setup(trainer.context)
        # post_round records loss and size together; mirror both here
        strategy._last_loss = {cid: float(cid) for cid in trainer.clients}
        strategy._num_examples = {
            cid: trainer.clients[cid].num_train_examples
            for cid in trainer.clients}
        selected = strategy.select_clients(1)
        assert len(selected) == tiny_config.clients_per_round
        # the highest-loss clients are chosen when not exploring
        assert max(trainer.clients) in selected

    def test_refl_prioritizes_stale_clients(self, small_fed_dataset, tiny_config):
        trainer = make_trainer(REFL(), small_fed_dataset, tiny_config)
        strategy = trainer.strategy
        strategy.setup(trainer.context)
        strategy._last_selected = {cid: 5 for cid in trainer.clients}
        strategy._last_selected[3] = -10  # very stale
        selected = strategy.select_clients(6)
        assert 3 in selected

    def test_refl_scales_iterations_with_capability(self, small_fed_dataset,
                                                    tiny_config):
        trainer = make_trainer(REFL(), small_fed_dataset, tiny_config)
        strategy = trainer.strategy
        strategy.setup(trainer.context)
        weak = min(trainer.clients.values(), key=lambda c: c.capability)
        update = strategy.local_update(0, weak)
        assert update.extras["iterations"] <= tiny_config.local_iterations


class TestPersonalizedStrategies:
    def test_ditto_keeps_personal_model_and_doubles_flops(self, small_fed_dataset,
                                                          tiny_config):
        trainer = make_trainer(Ditto(), small_fed_dataset, tiny_config)
        strategy = trainer.strategy
        strategy.setup(trainer.context)
        client = trainer.clients[0]
        update = strategy.local_update(0, client)
        assert "personal_params" in client.state
        dense_flops, _, _ = strategy._round_footprint(client)
        assert update.flops == pytest.approx(2 * dense_flops)

    def test_fedper_keeps_global_head_unchanged(self, small_fed_dataset,
                                                tiny_config):
        trainer = make_trainer(FedPer(), small_fed_dataset, tiny_config)
        strategy = trainer.strategy
        strategy.setup(trainer.context)
        before_head = {k: v.copy() for k, v in strategy.global_params.items()
                       if k.startswith("head.")}
        updates = [strategy.local_update(0, trainer.clients[cid]) for cid in (0, 1)]
        strategy.aggregate(0, updates)
        for key, value in before_head.items():
            np.testing.assert_array_equal(strategy.global_params[key], value)

    def test_fedper_evaluation_merges_personal_head(self, small_fed_dataset,
                                                    tiny_config):
        trainer = make_trainer(FedPer(), small_fed_dataset, tiny_config)
        strategy = trainer.strategy
        strategy.setup(trainer.context)
        client = trainer.clients[0]
        strategy.local_update(0, client)
        params, pattern = strategy.client_evaluation(client)
        assert pattern is None
        np.testing.assert_array_equal(params["head.W"],
                                      client.state["personal_head"]["head.W"])

    def test_fedrep_uploads_cost_more_flops_than_fedper(self, small_fed_dataset,
                                                        tiny_config):
        fedrep = make_trainer(FedRep(), small_fed_dataset, tiny_config)
        fedrep.strategy.setup(fedrep.context)
        update = fedrep.strategy.local_update(0, fedrep.clients[0])
        dense, _, _ = fedrep.strategy._round_footprint(fedrep.clients[0])
        assert update.flops > dense

    def test_perfedavg_adapts_at_evaluation_time(self, small_fed_dataset,
                                                 tiny_config):
        trainer = make_trainer(PerFedAvg(adaptation_steps=1),
                               small_fed_dataset, tiny_config)
        strategy = trainer.strategy
        strategy.setup(trainer.context)
        params, _ = strategy.client_evaluation(trainer.clients[0])
        moved = any(not np.array_equal(params[k], strategy.global_params[k])
                    for k in params)
        assert moved


class TestPersonalizedSparseStrategies:
    def test_lotteryfl_ratio_decays_on_success(self, small_fed_dataset,
                                               tiny_config):
        trainer = make_trainer(LotteryFL(accuracy_threshold=0.0),
                               small_fed_dataset, tiny_config)
        strategy = trainer.strategy
        strategy.setup(trainer.context)
        client = trainer.clients[0]
        strategy.local_update(0, client)
        assert client.state["ratio"] < 1.0

    def test_hermes_ratio_decays_every_k_participations(self, small_fed_dataset,
                                                        tiny_config):
        trainer = make_trainer(Hermes(prune_every=1, prune_step=0.2),
                               small_fed_dataset, tiny_config)
        strategy = trainer.strategy
        strategy.setup(trainer.context)
        client = trainer.clients[0]
        strategy.local_update(0, client)
        assert client.state["ratio"] == pytest.approx(0.8)

    def test_fedspa_keeps_constant_ratio_but_evolves_pattern(self,
                                                             small_fed_dataset,
                                                             tiny_config):
        trainer = make_trainer(FedSpa(ratio=0.5, regrow_fraction=0.5),
                               small_fed_dataset, tiny_config)
        strategy = trainer.strategy
        strategy.setup(trainer.context)
        client = trainer.clients[0]
        first = strategy.local_update(0, client)
        first_pattern = {k: v.copy() for k, v in client.state["personal_pattern"].items()}
        second = strategy.local_update(1, client)
        assert first.sparse_ratio == second.sparse_ratio == 0.5
        changed = any(not np.array_equal(first_pattern[k],
                                         client.state["personal_pattern"][k])
                      for k in first_pattern)
        assert changed

    def test_prunefl_shares_one_pattern_across_clients(self, small_fed_dataset,
                                                       tiny_config):
        trainer = make_trainer(PruneFL(keep_ratio=0.75), small_fed_dataset,
                               tiny_config)
        strategy = trainer.strategy
        strategy.setup(trainer.context)
        update_a = strategy.local_update(0, trainer.clients[0])
        update_b = strategy.local_update(0, trainer.clients[1])
        for key in update_a.pattern:
            np.testing.assert_array_equal(update_a.pattern[key],
                                          update_b.pattern[key])


class TestAblations:
    def test_ablation_factories_names(self):
        assert ablations.flst().name == "flst"
        assert ablations.rcr().name == "rcr"
        assert ablations.pucbv().name == "p-ucbv"
        assert "magnitude" in ablations.fedlps_with_pattern("magnitude").name
        assert "0.6" in ablations.fedlps_learnable_fixed_ratio(0.6).name

    def test_flst_uses_fixed_ratio_policy(self):
        strategy = ablations.flst(fixed_ratio=0.7)
        assert isinstance(strategy, FedLPS)
        assert strategy.ratio_policy == "fixed"
        assert strategy.fixed_ratio == 0.7

    def test_rcr_uses_capability_policy(self):
        assert ablations.rcr().ratio_policy == "capability"
