"""Base abstractions for the numpy neural-network substrate.

The federated-learning stack in this repository does not depend on any
deep-learning framework.  Instead, ``repro.nn`` provides a small, explicit
layer library with hand-written forward and backward passes.  Every layer

* stores its trainable parameters in ``self.params`` (a ``dict`` mapping a
  parameter name to a numpy array),
* accumulates gradients of the same shapes in ``self.grads``,
* optionally exposes *sparsifiable units* (neurons, convolution channels or
  recurrent hidden units) that structured sparsification can gate on and off.

Unit gating is the mechanism FedLPS uses to make sparse patterns learnable:
a layer with ``n_units`` units accepts a gate vector of that length, applies
it multiplicatively on the unit axis of its output and accumulates the
gradient of the loss with respect to the gate in ``self.unit_gate_grad``.
With a straight-through estimator this gradient becomes the gradient with
respect to the importance indicator ``Q`` of the paper.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

Array = np.ndarray
ParamDict = Dict[str, np.ndarray]


class Layer:
    """Base class for all layers.

    Subclasses implement :meth:`forward` and :meth:`backward`.  Layers are
    stateful between the two calls (the forward pass caches whatever the
    backward pass needs), which mirrors how a define-by-run framework would
    behave for a single training step.
    """

    #: whether the layer owns trainable parameters
    trainable: bool = True
    #: whether structured sparsification may prune this layer's units
    sparsifiable: bool = False

    def __init__(self, name: str) -> None:
        self.name = name
        self.params: ParamDict = {}
        self.grads: ParamDict = {}
        # unit gating state (only meaningful when ``sparsifiable`` is True)
        self.unit_gate: Optional[Array] = None
        self.unit_gate_grad: Optional[Array] = None

    # ------------------------------------------------------------------ API
    def forward(self, x: Array, *, train: bool = True) -> Array:
        raise NotImplementedError

    def backward(self, grad_out: Array) -> Array:
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Reset parameter and gate gradients to zero."""
        for key, value in self.params.items():
            self.grads[key] = np.zeros_like(value)
        if self.sparsifiable and self.n_units > 0:
            self.unit_gate_grad = np.zeros(self.n_units, dtype=np.float64)

    # ------------------------------------------------------------ unit API
    @property
    def n_units(self) -> int:
        """Number of sparsifiable units owned by this layer (0 if none)."""
        return 0

    def set_unit_gate(self, gate: Optional[Array]) -> None:
        """Install a multiplicative gate over this layer's units.

        ``gate`` must have length :attr:`n_units`; ``None`` removes gating.
        """
        if gate is None:
            self.unit_gate = None
            return
        gate = np.asarray(gate, dtype=np.float64)
        if gate.shape != (self.n_units,):
            raise ValueError(
                f"layer {self.name!r} expects a gate of shape ({self.n_units},), "
                f"got {gate.shape}"
            )
        self.unit_gate = gate

    def expand_unit_mask(self, unit_mask: Array) -> ParamDict:
        """Expand a binary unit mask into binary masks over the layer params.

        The returned dictionary maps parameter names to arrays of the same
        shape as the parameters, with zeros in the entries that belong to
        pruned units.  Layers without units return an empty dict.
        """
        return {}

    def unit_weight_magnitude(self) -> Array:
        """Per-unit sum of absolute parameter values (``|omega|_J`` in Eq. 8).

        Only meaningful for sparsifiable layers; the default raises because a
        caller asking for magnitudes of a unit-less layer is a bug.
        """
        raise NotImplementedError(
            f"layer {self.name!r} has no sparsifiable units")

    # ------------------------------------------------------------ accounting
    def flops_per_example(self, input_shape: Tuple[int, ...]) -> Tuple[int, Tuple[int, ...]]:
        """Return ``(flops, output_shape)`` for a single example.

        ``input_shape`` excludes the batch dimension.  The default counts no
        FLOPs and passes the shape through, which is appropriate for cheap
        element-wise layers.
        """
        return 0, input_shape

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return self.flops_per_example(input_shape)[1]

    # ------------------------------------------------------------ internals
    def _apply_unit_gate(self, out: Array, unit_axis: int) -> Array:
        """Multiply ``out`` by the installed gate along ``unit_axis``."""
        if self.unit_gate is None:
            return out
        shape = [1] * out.ndim
        shape[unit_axis] = self.unit_gate.shape[0]
        return out * self.unit_gate.reshape(shape)

    def _accumulate_gate_grad(self, grad_out: Array, pre_gate_out: Array,
                              unit_axis: int) -> Array:
        """Accumulate d(loss)/d(gate) and return the gradient w.r.t. the
        pre-gate output (i.e. ``grad_out`` scaled by the gate)."""
        if self.unit_gate is None:
            return grad_out
        axes = tuple(i for i in range(grad_out.ndim) if i != unit_axis)
        gate_grad = np.sum(grad_out * pre_gate_out, axis=axes)
        if self.unit_gate_grad is None:
            self.unit_gate_grad = np.zeros(self.n_units, dtype=np.float64)
        self.unit_gate_grad += gate_grad
        shape = [1] * grad_out.ndim
        shape[unit_axis] = self.unit_gate.shape[0]
        return grad_out * self.unit_gate.reshape(shape)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"


def as_float(x: Array) -> Array:
    """Coerce inputs to float64 arrays (the substrate's working dtype)."""
    return np.asarray(x, dtype=np.float64)
