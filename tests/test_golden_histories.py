"""Golden-history regression suite.

Re-runs every pinned (method, scenario) spec from
``tests/fixtures/golden/`` and compares the resulting history JSON
*bit-for-bit* against the committed fixture.  Any numeric drift — a changed
RNG stream, reordered aggregation, different float math — fails loudly.

Intentional changes are shipped by regenerating the fixtures
(``python tests/fixtures/regenerate_golden.py``) and reviewing the diff.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "golden_fixtures",
    Path(__file__).resolve().parent / "fixtures" / "regenerate_golden.py")
golden = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(golden)

SPECS = golden.golden_specs()


class TestFixturesAreComplete:
    def test_every_registry_strategy_is_pinned(self):
        from repro.baselines import available_strategies

        pinned = {name for name, _, scenario in SPECS if scenario == "ideal"}
        assert pinned == set(available_strategies()), (
            "registry and golden fixtures diverged; run "
            "`python tests/fixtures/regenerate_golden.py`")

    def test_no_orphan_fixture_files(self):
        expected = {golden.fixture_path(name).name for name, _, _ in SPECS}
        actual = {path.name for path in golden.FIXTURE_DIR.glob("*.json")}
        assert actual == expected, (
            "stale or missing golden fixture files; run "
            "`python tests/fixtures/regenerate_golden.py`")


@pytest.mark.parametrize("lazy_fleet", [True, False],
                         ids=["lazy-fleet", "eager-fleet"])
@pytest.mark.parametrize("name,method,scenario",
                         SPECS, ids=[name for name, _, _ in SPECS])
def test_history_matches_golden_fixture(name, method, scenario, lazy_fleet):
    """Each fixture must reproduce on BOTH fleet materialization paths.

    The lazy virtual fleet is the default; ``fleet.lazy=False`` retains the
    eager build-everything construction.  Neither is allowed to drift a
    bit from the committed fixture (which predates the virtual fleet).
    """
    path = golden.fixture_path(name)
    assert path.exists(), (
        f"missing golden fixture {path.name}; run "
        "`python tests/fixtures/regenerate_golden.py`")
    payload = json.loads(path.read_text())
    assert payload["overrides"] == dict(golden.GOLDEN_OVERRIDES), (
        "golden preset changed; regenerate the fixtures")
    history = golden.run_golden(method, scenario, lazy_fleet=lazy_fleet)
    # round-trip through JSON so float formatting cannot mask a mismatch
    fresh = json.loads(json.dumps(history.to_dict()))
    assert fresh == payload["history"], (
        f"numeric drift in {method!r} ({scenario}, lazy={lazy_fleet}); if "
        "intentional, run `python tests/fixtures/regenerate_golden.py` and "
        "commit the diff")
