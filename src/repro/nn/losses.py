"""Loss functions returning ``(loss_value, gradient_wrt_predictions)``."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .activations import softmax
from .base import Array, as_float


def softmax_cross_entropy(logits: Array, labels: Array) -> Tuple[float, Array]:
    """Softmax cross-entropy over the last axis.

    ``logits`` may be ``(N, C)`` or ``(N, T, C)``; ``labels`` are integer
    class ids of shape ``(N,)`` or ``(N, T)``.  The loss is averaged over all
    prediction positions and the returned gradient has the shape of
    ``logits``.
    """
    logits = as_float(logits)
    labels = np.asarray(labels)
    flat_logits = logits.reshape(-1, logits.shape[-1])
    flat_labels = labels.reshape(-1)
    if flat_logits.shape[0] != flat_labels.shape[0]:
        raise ValueError(
            f"logits/labels size mismatch: {logits.shape} vs {labels.shape}")
    n = flat_logits.shape[0]
    probs = softmax(flat_logits, axis=-1)
    eps = 1e-12
    loss = -np.mean(np.log(probs[np.arange(n), flat_labels] + eps))
    grad = probs.copy()
    grad[np.arange(n), flat_labels] -= 1.0
    grad /= n
    return float(loss), grad.reshape(logits.shape)


def softmax_cross_entropy_cohort(logits: Array, labels: Array,
                                 counts: Array) -> Tuple[np.ndarray, Array]:
    """Per-client softmax cross-entropy over a stacked ``(C, B, K)`` cohort.

    ``labels`` is ``(C, B)`` integer class ids and ``counts`` gives each
    client's number of real rows (padded rows beyond ``counts[c]`` must hold
    in-range dummy labels).  Returns ``(losses, grad)`` where ``losses`` is a
    ``(C,)`` vector and ``grad`` has the shape of ``logits`` with padded rows
    zeroed — every per-client slice is bit-identical to
    :func:`softmax_cross_entropy` on that client's real rows alone: the
    softmax/log/pick operations are row-local, the per-client mean reduces a
    contiguous slice with the same summation tree, and the gradient division
    by ``counts[c]`` is the same IEEE operation as the sequential ``/= n``.
    """
    logits = as_float(logits)
    labels = np.asarray(labels)
    counts = np.asarray(counts)
    if logits.ndim != 3 or labels.shape != logits.shape[:2]:
        raise ValueError(
            f"cohort logits/labels mismatch: {logits.shape} vs {labels.shape}")
    cohort, batch, _ = logits.shape
    probs = softmax(logits, axis=-1)
    eps = 1e-12
    client_index = np.arange(cohort)[:, None]
    row_index = np.arange(batch)[None, :]
    logs = np.log(probs[client_index, row_index, labels] + eps)
    losses = np.empty(cohort, dtype=np.float64)
    for i in range(cohort):
        losses[i] = -np.mean(logs[i, :counts[i]])
    grad = probs.copy()
    grad[client_index, row_index, labels] -= 1.0
    grad /= counts.astype(np.float64)[:, None, None]
    for i in range(cohort):
        grad[i, counts[i]:] = 0.0
    return losses, grad


def accuracy_cohort(logits: Array, labels: Array, counts: Array) -> np.ndarray:
    """Per-client top-1 accuracy for stacked ``(C, B, K)`` cohort logits."""
    logits = as_float(logits)
    labels = np.asarray(labels)
    counts = np.asarray(counts)
    hits = np.argmax(logits, axis=-1) == labels
    return np.array([float(np.mean(hits[i, :counts[i]]))
                     for i in range(len(counts))])


def mean_squared_error(predictions: Array, targets: Array) -> Tuple[float, Array]:
    """Mean squared error averaged over every element."""
    predictions = as_float(predictions)
    targets = as_float(targets)
    if predictions.shape != targets.shape:
        raise ValueError(
            f"prediction/target shape mismatch: {predictions.shape} vs {targets.shape}")
    diff = predictions - targets
    loss = float(np.mean(diff ** 2))
    grad = 2.0 * diff / diff.size
    return loss, grad


def accuracy(logits: Array, labels: Array) -> float:
    """Top-1 classification accuracy for ``(N, C)`` or ``(N, T, C)`` logits."""
    logits = as_float(logits)
    labels = np.asarray(labels)
    predictions = np.argmax(logits, axis=-1)
    return float(np.mean(predictions == labels))
