"""Tests for the strategy interface, the client container and the trainer."""

import numpy as np
import pytest

from repro.data import build_federated_dataset
from repro.federated import (Client, FederatedConfig, FederatedTrainer,
                             Strategy, run_federated)
from repro.models import build_model_for_dataset
from repro.systems import DeviceProfile, sample_device_fleet


class TestFederatedConfig:
    def test_defaults_are_valid(self):
        config = FederatedConfig()
        assert config.num_rounds > 0

    @pytest.mark.parametrize("field,value", [
        ("num_rounds", 0), ("clients_per_round", 0), ("local_iterations", 0),
        ("batch_size", 0), ("learning_rate", 0.0), ("eval_every", 0),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            FederatedConfig(**{field: value})


class TestClient:
    def test_client_ids_must_match(self, small_fed_dataset):
        shard = small_fed_dataset.client(0)
        device = DeviceProfile(1, 1.0)
        with pytest.raises(ValueError):
            Client(1, shard, device)

    def test_client_properties(self, small_fed_dataset):
        shard = small_fed_dataset.client(2)
        client = Client(2, shard, DeviceProfile(2, 0.5))
        assert client.capability == 0.5
        assert client.num_train_examples == len(shard.train)
        loader = client.train_loader(8, seed=1)
        assert sum(len(y) for _, y in loader) == len(shard.train)


class TestStrategyDefaults:
    def test_requires_setup_before_use(self):
        strategy = Strategy()
        with pytest.raises(RuntimeError):
            strategy.select_clients(0)

    def test_selection_size_and_determinism(self, small_fed_dataset, tiny_config):
        trainer = FederatedTrainer(Strategy(), small_fed_dataset,
                                   lambda: build_model_for_dataset("mnist"),
                                   config=tiny_config)
        trainer.strategy.setup(trainer.context)
        selected = trainer.strategy.select_clients(0)
        assert len(selected) == tiny_config.clients_per_round
        assert all(cid in small_fed_dataset.clients for cid in selected)

    def test_local_update_reports_footprint(self, small_fed_dataset, tiny_config):
        trainer = FederatedTrainer(Strategy(), small_fed_dataset,
                                   lambda: build_model_for_dataset("mnist"),
                                   config=tiny_config)
        trainer.strategy.setup(trainer.context)
        update = trainer.strategy.local_update(0, trainer.clients[0])
        assert update.flops > 0
        assert update.upload_bytes > 0
        assert update.num_examples == trainer.clients[0].num_train_examples
        assert set(update.params) == set(trainer.strategy.global_params)

    def test_aggregate_moves_global_params(self, small_fed_dataset, tiny_config):
        trainer = FederatedTrainer(Strategy(), small_fed_dataset,
                                   lambda: build_model_for_dataset("mnist"),
                                   config=tiny_config)
        strategy = trainer.strategy
        strategy.setup(trainer.context)
        before = strategy.snapshot_global()
        updates = [strategy.local_update(0, trainer.clients[cid])
                   for cid in (0, 1)]
        strategy.aggregate(0, updates)
        changed = any(not np.array_equal(before[k], strategy.global_params[k])
                      for k in before)
        assert changed

    def test_aggregate_empty_is_noop(self, small_fed_dataset, tiny_config):
        trainer = FederatedTrainer(Strategy(), small_fed_dataset,
                                   lambda: build_model_for_dataset("mnist"),
                                   config=tiny_config)
        strategy = trainer.strategy
        strategy.setup(trainer.context)
        before = strategy.snapshot_global()
        strategy.aggregate(0, [])
        for key in before:
            np.testing.assert_array_equal(before[key], strategy.global_params[key])


class TestTrainer:
    def test_run_produces_history(self, small_fed_dataset, tiny_config):
        history = run_federated(Strategy(), small_fed_dataset,
                                lambda: build_model_for_dataset("mnist"),
                                config=tiny_config)
        assert len(history) == tiny_config.num_rounds
        assert history.total_flops > 0
        assert history.total_time_seconds > 0
        assert all(0.0 <= acc <= 1.0 for acc in history.accuracies)
        # cumulative series are non-decreasing
        assert history.cumulative_flops == sorted(history.cumulative_flops)
        assert history.cumulative_time == sorted(history.cumulative_time)

    def test_fleet_size_mismatch_rejected(self, small_fed_dataset, tiny_config):
        fleet = sample_device_fleet(3, seed=0)
        with pytest.raises(ValueError):
            FederatedTrainer(Strategy(), small_fed_dataset,
                             lambda: build_model_for_dataset("mnist"),
                             config=tiny_config, fleet=fleet)

    def test_eval_every_skips_evaluations(self, small_fed_dataset):
        config = FederatedConfig(num_rounds=4, clients_per_round=2,
                                 local_iterations=1, batch_size=8,
                                 eval_every=2, seed=0)
        history = run_federated(Strategy(), small_fed_dataset,
                                lambda: build_model_for_dataset("mnist"),
                                config=config)
        # rounds 0 and 2 reuse the previous accuracy (0.0 initially)
        assert history.records[0].test_accuracy == 0.0

    def test_carried_accuracy_is_flagged(self, small_fed_dataset):
        config = FederatedConfig(num_rounds=4, clients_per_round=2,
                                 local_iterations=1, batch_size=8,
                                 eval_every=2, seed=0)
        history = run_federated(Strategy(), small_fed_dataset,
                                lambda: build_model_for_dataset("mnist"),
                                config=config)
        # skipped rounds carry the stale value and say so; eval rounds are
        # fresh, and carried values equal the previous fresh one
        assert [r.evaluated for r in history.records] == [False, True,
                                                          False, True]
        assert history.records[2].test_accuracy == \
            history.records[1].test_accuracy

    def test_every_round_evaluated_by_default(self, small_fed_dataset,
                                              tiny_config):
        history = run_federated(Strategy(), small_fed_dataset,
                                lambda: build_model_for_dataset("mnist"),
                                config=tiny_config)
        assert all(record.evaluated for record in history.records)

    def test_reproducible_given_seed(self, small_fed_dataset, tiny_config):
        builder = lambda: build_model_for_dataset("mnist", seed=0)
        a = run_federated(Strategy(), small_fed_dataset, builder, config=tiny_config)
        b = run_federated(Strategy(), small_fed_dataset, builder, config=tiny_config)
        assert a.accuracies == b.accuracies
        assert a.total_flops == b.total_flops

    def test_next_word_task_runs(self, reddit_fed_dataset, tiny_config):
        history = run_federated(
            Strategy(), reddit_fed_dataset,
            lambda: build_model_for_dataset("reddit", seed=0),
            config=tiny_config)
        assert len(history) == tiny_config.num_rounds
